#include "obs/perf_counters.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/trace.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace cdl::obs {

namespace {

#if defined(__linux__)
constexpr std::uint64_t kEventConfigs[PerfGroup::kNumEvents] = {
    PERF_COUNT_HW_CPU_CYCLES,       PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};

long perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                     unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}
#endif

}  // namespace

double PerfReading::ipc() const {
  if (!cycles.valid || !instructions.valid || cycles.value == 0) return 0.0;
  return static_cast<double>(instructions.value) /
         static_cast<double>(cycles.value);
}

double PerfReading::cache_miss_rate() const {
  if (!cache_references.valid || !cache_misses.valid ||
      cache_references.value == 0) {
    return 0.0;
  }
  return static_cast<double>(cache_misses.value) /
         static_cast<double>(cache_references.value);
}

double PerfReading::multiplex_ratio() const {
  if (time_enabled_ns == 0) return 1.0;
  return static_cast<double>(time_running_ns) /
         static_cast<double>(time_enabled_ns);
}

std::string PerfReading::summary(const std::string& reason) const {
  char line[256];
  if (!available) {
    std::snprintf(line, sizeof line,
                  "perf: hardware counters unavailable%s%s%s, wall %.3f ms",
                  reason.empty() ? "" : " (", reason.c_str(),
                  reason.empty() ? "" : ")",
                  static_cast<double>(wall_ns) / 1e6);
    return line;
  }
  std::snprintf(line, sizeof line,
                "perf: %.3e cycles, %.3e instructions (ipc %.2f), cache-miss "
                "%.1f %%, %.3e branch-misses, sched %.0f %%, wall %.3f ms",
                static_cast<double>(cycles.value),
                static_cast<double>(instructions.value), ipc(),
                100.0 * cache_miss_rate(),
                static_cast<double>(branch_misses.value),
                100.0 * multiplex_ratio(),
                static_cast<double>(wall_ns) / 1e6);
  return line;
}

PerfGroup::PerfGroup() {
  for (int& fd : fds_) fd = -1;
#if defined(__linux__)
  int first_errno = 0;
  for (int i = 0; i < kNumEvents; ++i) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof attr);
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof attr;
    attr.config = kEventConfigs[i];
    attr.disabled = 1;
    attr.exclude_kernel = 1;  // userspace-only needs a lower paranoid level
    attr.exclude_hv = 1;
    attr.read_format =
        PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
    const long fd = perf_event_open(&attr, 0, -1, -1, 0);
    if (fd >= 0) {
      fds_[i] = static_cast<int>(fd);
      available_ = true;
    } else if (first_errno == 0) {
      first_errno = errno;
    }
  }
  if (!available_) {
    if (first_errno == EACCES || first_errno == EPERM) {
      reason_ = "perf_event_open: permission denied -- check "
                "kernel.perf_event_paranoid (see docs/OBSERVABILITY.md)";
    } else {
      reason_ = std::string("perf_event_open: ") + std::strerror(first_errno);
    }
  }
#else
  reason_ = "perf_event_open is Linux-only";
#endif
}

PerfGroup::~PerfGroup() {
#if defined(__linux__)
  for (const int fd : fds_) {
    if (fd >= 0) close(fd);
  }
#endif
}

void PerfGroup::start() {
#if defined(__linux__)
  for (const int fd : fds_) {
    if (fd < 0) continue;
    ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
#endif
  wall_start_ = now_ns();
  started_ = true;
}

PerfReading PerfGroup::stop() {
  PerfReading reading;
  reading.wall_ns = started_ ? now_ns() - wall_start_ : 0;
  started_ = false;
#if defined(__linux__)
  PerfValue* const values[kNumEvents] = {
      &reading.cycles, &reading.instructions, &reading.cache_references,
      &reading.cache_misses, &reading.branch_misses};
  for (int i = 0; i < kNumEvents; ++i) {
    const int fd = fds_[i];
    if (fd < 0) continue;
    ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
    std::uint64_t buf[3] = {0, 0, 0};  // value, time_enabled, time_running
    if (read(fd, buf, sizeof buf) != static_cast<ssize_t>(sizeof buf)) continue;
    if (buf[2] == 0) continue;  // never scheduled onto the PMU
    values[i]->valid = true;
    values[i]->value = buf[0];
    reading.time_enabled_ns = std::max(reading.time_enabled_ns, buf[1]);
    reading.time_running_ns = std::max(reading.time_running_ns, buf[2]);
    reading.available = true;
  }
#endif
  return reading;
}

void write_perf_json(std::ostream& os, const PerfReading& reading) {
  const auto field = [&os](const char* name, const PerfValue& v,
                           bool trailing_comma = true) {
    os << '"' << name << "\": ";
    if (v.valid) {
      os << v.value;
    } else {
      os << "null";
    }
    if (trailing_comma) os << ", ";
  };
  os << "{\"available\": " << (reading.available ? "true" : "false")
     << ", \"wall_ns\": " << reading.wall_ns << ", \"time_enabled_ns\": "
     << reading.time_enabled_ns << ", \"time_running_ns\": "
     << reading.time_running_ns << ", ";
  field("cycles", reading.cycles);
  field("instructions", reading.instructions);
  field("cache_references", reading.cache_references);
  field("cache_misses", reading.cache_misses);
  field("branch_misses", reading.branch_misses, false);
  char tail[96];
  std::snprintf(tail, sizeof tail,
                ", \"ipc\": %.4f, \"cache_miss_rate\": %.6f, "
                "\"multiplex_ratio\": %.4f}",
                reading.ipc(), reading.cache_miss_rate(),
                reading.multiplex_ratio());
  os << tail;
}

}  // namespace cdl::obs
