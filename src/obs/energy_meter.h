// EnergyMeter: precision-aware energy attribution over profiler rows.
//
// The paper's headline quantity is energy per classified input (normalized
// OPS folded through 45 nm per-op costs). The offline accounting lives in
// src/energy (EnergyModel) and bench/fig6_energy; this meter makes the same
// arithmetic available to the live observability plane: it prices the
// LayerProfiler's per-(stage, layer, precision) op bundles — fp32 rows via
// EnergyCosts::cmos_45nm(), rows whose name carries the quantized cascade's
// "[int8]" suffix via cmos_45nm_int8() — into per-stage picojoule totals,
// and builds the cumulative exit-energy tables the serving engine stamps
// onto each Response.
//
// Determinism: profiler rows merge by integer OpCount addition (commutes),
// so the merged bundles — and every double computed from them here — are
// identical for any thread count. Per-stage energies accumulate in cascade
// order exactly like fig6_energy's running sums, so the exit-energy table
// and the exit-weighted average are bit-identical to the offline accounting
// (test_energy_meter asserts this for the paper architectures).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "energy/energy_model.h"
#include "nn/opcount.h"
#include "obs/layer_profile.h"

namespace cdl::obs {

/// One cascade stage's op bundle split by execution precision. Exactly one
/// part is typically non-empty; the final FC stage of a quantized cascade
/// mixes both (int8 segment, fp32 softmax+argmax).
struct PrecisionOps {
  OpCount fp32;
  OpCount int8;
};

/// Per-stage energy attribution folded from a LayerProfiler snapshot.
struct StageEnergyRow {
  std::int32_t stage = kNoStage;
  std::uint64_t samples = 0;  ///< images that entered the stage
  OpCount fp32_ops;           ///< merged ops of the stage's fp32 rows
  OpCount int8_ops;           ///< merged ops of the stage's [int8] rows
  double energy_pj = 0.0;     ///< total pJ attributed across all samples
  double per_image_pj = 0.0;  ///< pJ of one image's pass through the stage
};

class EnergyMeter {
 public:
  explicit EnergyMeter(EnergyCosts fp32 = EnergyCosts::cmos_45nm(),
                       EnergyCosts int8 = EnergyCosts::cmos_45nm_int8());

  /// True when the profiler row was recorded by an int8 execution path (the
  /// quantized cascade suffixes its row names with "[int8]").
  [[nodiscard]] static bool is_int8_row(const std::string& name);

  /// Energy of one op bundle under the selected precision, in picojoules.
  [[nodiscard]] double energy_pj(const OpCount& ops, bool int8) const;

  /// Folds a profiler snapshot into per-stage rows, sorted by stage.
  /// `per_image_pj` divides each row's bundle by its sample count before
  /// pricing (exact: rows accumulate identical per-sample bundles), so it
  /// matches the offline per-image stage cost bit-identically.
  [[nodiscard]] std::vector<StageEnergyRow> attribute(
      const std::vector<LayerProfileRow>& rows) const;

  /// Total attributed energy: the per-stage energies summed in stage order,
  /// so sum-of-stages == total holds bit-exactly (the balance invariant
  /// bench_check.py re-checks on the exported JSON).
  [[nodiscard]] double total_pj(const std::vector<StageEnergyRow>& stages) const;

  /// Cumulative exit-energy table: entry s is the energy an input spends
  /// when it exits at stage s (runs stages 0..s). `stages` holds the
  /// *incremental* per-stage bundles in cascade order (last entry = final
  /// FC stage). The accumulation order matches fig6_energy's running sums
  /// bit-exactly.
  [[nodiscard]] std::vector<double> exit_energy_table(
      const std::vector<PrecisionOps>& stages) const;

  /// Exit-weighted average energy per image (pJ): sum over stages of
  /// exit_fraction(s) * exit_energy[s], the same FP order fig6_energy and
  /// eval::Evaluation use.
  [[nodiscard]] static double exit_weighted_pj(
      const std::vector<double>& exit_energy,
      const std::vector<std::uint64_t>& exit_counts);

  [[nodiscard]] const EnergyModel& fp32_model() const { return fp32_; }
  [[nodiscard]] const EnergyModel& int8_model() const { return int8_; }

 private:
  EnergyModel fp32_;
  EnergyModel int8_;
};

}  // namespace cdl::obs
