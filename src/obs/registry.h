// Metrics registry: named Counter/Gauge/Histogram instruments with labels,
// deterministic snapshots, OpenMetrics text exposition and JSON export.
//
// The registry is the pull-side of the observability stack: code under
// measurement registers instruments once and bumps them; exporters walk the
// registry and render every sample in a canonical order (families sorted by
// name, samples sorted by canonicalized label set), so two registries fed the
// same values render byte-identical text regardless of registration order.
// Registration is guarded by a mutex; the returned instrument references are
// stable for the registry's lifetime. Individual increments are NOT
// synchronized — aggregate serially (the repo-wide determinism convention)
// or guard concurrent writers externally.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace cdl::obs {

/// Label key/value pairs attached to one sample of a metric family. Order is
/// irrelevant: the registry canonicalizes by sorting on the key.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(MetricType type);

/// Monotonically increasing value (totals: samples seen, OPS spent).
class Counter {
 public:
  /// Adds `delta` (>= 0, finite); throws std::invalid_argument otherwise.
  void inc(double delta = 1.0);
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Instantaneous value (fractions, ratios, configuration echoes).
class Gauge {
 public:
  void set(double value) { value_ = value; }
  void add(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the counter for (name, labels), creating it on first use.
  /// Throws std::invalid_argument on an invalid metric/label name or when
  /// `name` already exists with a different type.
  Counter& counter(const std::string& name, const std::string& help = "",
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help = "",
               const Labels& labels = {});
  /// The histogram uses the fixed-bin layout of obs::Histogram; re-requesting
  /// an existing sample with a different layout throws.
  Histogram& histogram(const std::string& name, const std::string& help,
                       double lo, double hi, std::size_t bins,
                       const Labels& labels = {});

  [[nodiscard]] std::size_t num_families() const;
  [[nodiscard]] std::size_t num_samples() const;
  void clear();

  /// OpenMetrics-style text: # HELP/# TYPE headers, one line per sample,
  /// counters suffixed _total, histograms as cumulative _bucket{le=...}
  /// plus _count/_sum and explicit _underflow/_overflow/_nan auxiliaries
  /// (obs::Histogram tracks those separately; standard exposition would
  /// silently fold or drop them). Deterministic byte-for-byte for equal
  /// contents.
  void write_openmetrics(std::ostream& os) const;
  [[nodiscard]] std::string openmetrics() const;

  /// The same snapshot as a JSON object keyed by family name. Non-finite
  /// gauge values are emitted as null (JSON has no NaN/Inf).
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string json() const;

 private:
  struct Metric {
    MetricType type = MetricType::kCounter;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> hist;
  };
  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
    /// Keyed by the canonical rendered label set ("" for no labels); map
    /// iteration order makes exposition deterministic.
    std::map<std::string, std::unique_ptr<Metric>> samples;
  };

  Metric& sample(const std::string& name, const std::string& help,
                 const Labels& labels, MetricType type);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

/// Canonical `{k="v",...}` rendering (keys sorted, values escaped); empty
/// labels render as "". Exposed for exporters and tests.
[[nodiscard]] std::string render_labels(const Labels& labels);

/// Deterministic number rendering shared by both exporters: integers without
/// a decimal point, everything else with round-trippable precision.
[[nodiscard]] std::string render_value(double value);

}  // namespace cdl::obs
