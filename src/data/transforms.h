// Dataset-level transforms: normalization statistics and simple augmentation.
#pragma once

#include "core/rng.h"
#include "data/dataset.h"

namespace cdl {

struct PixelStats {
  float mean = 0.0F;
  float stddev = 1.0F;
};

/// Mean/stddev over every pixel of every image.
[[nodiscard]] PixelStats compute_pixel_stats(const Dataset& data);

/// Returns a copy with (pixel - mean) / stddev applied.
[[nodiscard]] Dataset normalize(const Dataset& data, PixelStats stats);

/// Returns a copy with additive Gaussian pixel noise, clamped to [0, 1].
/// Used by robustness tests and the failure-injection suite.
[[nodiscard]] Dataset with_noise(const Dataset& data, float stddev, Rng& rng);

/// Returns a copy translated by (dx, dy) pixels with zero fill.
[[nodiscard]] Tensor translate_image(const Tensor& image, int dx, int dy);

}  // namespace cdl
