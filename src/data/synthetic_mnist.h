// SyntheticMnist: procedural MNIST-like digit generator.
//
// Substitution for the real MNIST files (unavailable offline — see DESIGN.md
// §4): each digit class is defined as a set of strokes (polylines over a unit
// canvas), rasterized as an anti-aliased distance field, then perturbed per
// sample with a random affine transform, control-point jitter, stroke
// thickness variation and additive noise.
//
// Perturbation magnitudes scale with a per-sample *difficulty* draw whose
// distribution is mostly-easy with a hard tail, reproducing the property the
// paper exploits: a large majority of easy instances and a small fraction of
// hard ones, with structurally simple glyphs (digit 1) easier than complex
// ones (digit 5).
//
// Rendering is deterministic per (seed, digit, sample_index).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/stroke_renderer.h"

namespace cdl {

struct SyntheticMnistConfig {
  std::uint64_t seed = 1;
  std::size_t image_size = 28;

  /// Base half-thickness of strokes in glyph units.
  float stroke_thickness = 0.055F;

  // Perturbation magnitudes at difficulty = 1 (scaled down linearly for
  // easier samples). Calibrated so a LeNet-scale baseline lands in the high
  // 90s, matching the paper's MNIST accuracy regime.
  float max_rotation_rad = 0.30F;
  float max_shear = 0.22F;
  float min_scale = 0.78F;
  float max_scale = 1.12F;
  float max_translate = 0.10F;     ///< glyph units
  float point_jitter = 0.035F;     ///< stddev of control-point displacement
  float thickness_jitter = 0.45F;  ///< relative thickness variation
  float noise_stddev = 0.10F;      ///< additive pixel noise

  /// Shape of the difficulty distribution: difficulty = u^exponent for
  /// u ~ U[0,1]. Larger exponent -> more easy samples. 2.2 yields roughly
  /// 70% below difficulty 0.5.
  float difficulty_exponent = 2.2F;

  /// Per-class difficulty multipliers (difficulty is scaled then clamped to
  /// [0,1]). Real MNIST classes are not equally hard — '1' is by far the
  /// easiest, '5' and '8' the hardest — and the paper's per-digit results
  /// (Figs. 5, 6, 8) hinge on that contrast, so the substitute mirrors it.
  std::array<float, 10> class_difficulty = {1.00F, 0.45F, 1.05F, 1.00F, 0.95F,
                                            1.60F, 1.00F, 0.80F, 1.25F, 1.05F};

  /// Background clutter intensity in [0,1]: adds faint distractor strokes
  /// behind the digit, emulating the paper's motivating "subject in a crowd"
  /// scenario (harder backgrounds push inputs toward deeper stages). 0
  /// disables clutter.
  float clutter = 0.0F;
};

class SyntheticMnist {
 public:
  explicit SyntheticMnist(SyntheticMnistConfig config = {});

  /// Canonical (unperturbed) strokes of a digit, exposed for tests.
  [[nodiscard]] static const std::vector<Stroke>& glyph(std::size_t digit);

  /// Renders sample `sample_index` of class `digit`: a (1, S, S) tensor with
  /// pixel values in [0,1]. Deterministic in (config.seed, digit, index).
  [[nodiscard]] Tensor render(std::size_t digit, std::uint64_t sample_index) const;

  /// Difficulty in [0,1] drawn for the given sample (same draw render uses).
  [[nodiscard]] float difficulty(std::size_t digit, std::uint64_t sample_index) const;

  /// Balanced dataset of `count` samples (classes round-robin). `index_base`
  /// offsets sample indices so train/test sets are disjoint.
  [[nodiscard]] Dataset generate(std::size_t count,
                                 std::uint64_t index_base = 0) const;

  /// `count` samples of one class.
  [[nodiscard]] Dataset generate_digit(std::size_t digit, std::size_t count,
                                       std::uint64_t index_base = 0) const;

  [[nodiscard]] const SyntheticMnistConfig& config() const { return config_; }

 private:
  SyntheticMnistConfig config_;
  StrokeRenderer renderer_;
};

/// Convenience: train/validation/test split, using real MNIST when
/// $CDL_MNIST_DIR is set and valid, otherwise the synthetic generator with
/// the given seed. The validation split (used e.g. by select_delta) is empty
/// when `val_count` is 0; it never overlaps train or test.
struct MnistPair {
  Dataset train;
  Dataset test;
  Dataset validation;
  bool synthetic = true;
};
[[nodiscard]] MnistPair load_mnist_or_synthetic(std::size_t train_count,
                                                std::size_t test_count,
                                                std::uint64_t seed = 1,
                                                std::size_t val_count = 0);

}  // namespace cdl
