#include "data/idx_loader.h"

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace cdl {

namespace {

std::uint32_t read_be32(std::istream& is) {
  unsigned char b[4];
  is.read(reinterpret_cast<char*>(b), 4);
  if (!is) throw std::runtime_error("idx: truncated header");
  return (std::uint32_t{b[0]} << 24) | (std::uint32_t{b[1]} << 16) |
         (std::uint32_t{b[2]} << 8) | std::uint32_t{b[3]};
}

constexpr std::uint32_t kImageMagic = 0x00000803;  // idx3-ubyte
constexpr std::uint32_t kLabelMagic = 0x00000801;  // idx1-ubyte

}  // namespace

Dataset load_idx(const std::string& image_path, const std::string& label_path) {
  std::ifstream img(image_path, std::ios::binary);
  if (!img) throw std::runtime_error("idx: cannot open " + image_path);
  std::ifstream lbl(label_path, std::ios::binary);
  if (!lbl) throw std::runtime_error("idx: cannot open " + label_path);

  if (read_be32(img) != kImageMagic) {
    throw std::runtime_error("idx: bad image magic in " + image_path);
  }
  const std::uint32_t n_images = read_be32(img);
  const std::uint32_t rows = read_be32(img);
  const std::uint32_t cols = read_be32(img);

  if (read_be32(lbl) != kLabelMagic) {
    throw std::runtime_error("idx: bad label magic in " + label_path);
  }
  const std::uint32_t n_labels = read_be32(lbl);
  if (n_images != n_labels) {
    throw std::runtime_error("idx: image/label count mismatch");
  }

  Dataset out;
  std::vector<unsigned char> pixel_buf(static_cast<std::size_t>(rows) * cols);
  for (std::uint32_t i = 0; i < n_images; ++i) {
    img.read(reinterpret_cast<char*>(pixel_buf.data()),
             static_cast<std::streamsize>(pixel_buf.size()));
    char label_byte = 0;
    lbl.read(&label_byte, 1);
    if (!img || !lbl) throw std::runtime_error("idx: truncated data");

    Tensor image(Shape{1, rows, cols});
    for (std::size_t p = 0; p < pixel_buf.size(); ++p) {
      image[p] = static_cast<float>(pixel_buf[p]) / 255.0F;
    }
    out.add(std::move(image), static_cast<std::size_t>(
                                  static_cast<unsigned char>(label_byte)));
  }
  return out;
}

Dataset load_mnist_split(const std::string& dir, MnistSplit split) {
  const bool train = split == MnistSplit::kTrain;
  const std::string prefix = train ? "train" : "t10k";
  return load_idx(dir + "/" + prefix + "-images-idx3-ubyte",
                  dir + "/" + prefix + "-labels-idx1-ubyte");
}

std::optional<std::string> mnist_dir_from_env() {
  const char* dir = std::getenv("CDL_MNIST_DIR");
  if (dir == nullptr) return std::nullopt;
  namespace fs = std::filesystem;
  if (fs::exists(fs::path(dir) / "train-images-idx3-ubyte") &&
      fs::exists(fs::path(dir) / "train-labels-idx1-ubyte") &&
      fs::exists(fs::path(dir) / "t10k-images-idx3-ubyte") &&
      fs::exists(fs::path(dir) / "t10k-labels-idx1-ubyte")) {
    return std::string(dir);
  }
  return std::nullopt;
}

}  // namespace cdl
