// IDX file loader: reads the MNIST distribution format (big-endian IDX).
//
// If genuine MNIST files are available (env CDL_MNIST_DIR pointing at a
// directory with train-images-idx3-ubyte etc.), all harnesses use them via
// load_mnist_split(); otherwise they fall back to the synthetic generator.
#pragma once

#include <optional>
#include <string>

#include "data/dataset.h"

namespace cdl {

/// Reads an idx3-ubyte image file + idx1-ubyte label file. Pixels are scaled
/// to [0,1] and emitted as (1, rows, cols) tensors.
[[nodiscard]] Dataset load_idx(const std::string& image_path,
                               const std::string& label_path);

enum class MnistSplit { kTrain, kTest };

/// Loads a split using the canonical MNIST filenames under `dir`.
[[nodiscard]] Dataset load_mnist_split(const std::string& dir, MnistSplit split);

/// Directory from $CDL_MNIST_DIR if it contains the canonical files.
[[nodiscard]] std::optional<std::string> mnist_dir_from_env();

}  // namespace cdl
