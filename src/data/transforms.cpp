#include "data/transforms.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cdl {

PixelStats compute_pixel_stats(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("compute_pixel_stats: empty");
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (float v : data.image(i).values()) {
      sum += v;
      sum_sq += static_cast<double>(v) * v;
      ++n;
    }
  }
  const double mean = sum / static_cast<double>(n);
  const double var = std::max(0.0, sum_sq / static_cast<double>(n) - mean * mean);
  PixelStats stats;
  stats.mean = static_cast<float>(mean);
  stats.stddev = static_cast<float>(std::sqrt(var));
  if (stats.stddev < 1e-6F) stats.stddev = 1.0F;
  return stats;
}

Dataset normalize(const Dataset& data, PixelStats stats) {
  Dataset out;
  for (std::size_t i = 0; i < data.size(); ++i) {
    Tensor img = data.image(i);
    for (float& v : img.values()) v = (v - stats.mean) / stats.stddev;
    out.add(std::move(img), data.label(i));
  }
  return out;
}

Dataset with_noise(const Dataset& data, float stddev, Rng& rng) {
  Dataset out;
  for (std::size_t i = 0; i < data.size(); ++i) {
    Tensor img = data.image(i);
    for (float& v : img.values()) {
      v = std::clamp(v + rng.normal(0.0F, stddev), 0.0F, 1.0F);
    }
    out.add(std::move(img), data.label(i));
  }
  return out;
}

Tensor translate_image(const Tensor& image, int dx, int dy) {
  if (image.shape().rank() != 3) {
    throw std::invalid_argument("translate_image: expected CHW tensor");
  }
  const std::size_t c = image.shape()[0];
  const std::size_t h = image.shape()[1];
  const std::size_t w = image.shape()[2];
  Tensor out(image.shape());
  for (std::size_t ch = 0; ch < c; ++ch) {
    for (std::size_t y = 0; y < h; ++y) {
      const auto sy = static_cast<long>(y) - dy;
      if (sy < 0 || sy >= static_cast<long>(h)) continue;
      for (std::size_t x = 0; x < w; ++x) {
        const auto sx = static_cast<long>(x) - dx;
        if (sx < 0 || sx >= static_cast<long>(w)) continue;
        out.at(ch, y, x) = image.at(ch, static_cast<std::size_t>(sy),
                                    static_cast<std::size_t>(sx));
      }
    }
  }
  return out;
}

}  // namespace cdl
