// Dataset: labeled image collection used for training and evaluation.
#pragma once

#include <cstddef>
#include <vector>

#include "core/rng.h"
#include "core/tensor.h"

namespace cdl {

class Dataset {
 public:
  Dataset() = default;

  /// Appends one sample; every image must share the first image's shape.
  void add(Tensor image, std::size_t label);

  [[nodiscard]] std::size_t size() const { return images_.size(); }
  [[nodiscard]] bool empty() const { return images_.empty(); }

  [[nodiscard]] const Tensor& image(std::size_t i) const { return images_.at(i); }
  [[nodiscard]] std::size_t label(std::size_t i) const { return labels_.at(i); }

  /// All images in sample order (for batched inference paths).
  [[nodiscard]] const std::vector<Tensor>& images() const { return images_; }

  /// Shape shared by all images; dataset must be non-empty.
  [[nodiscard]] const Shape& image_shape() const;

  /// Number of distinct labels = max label + 1.
  [[nodiscard]] std::size_t num_classes() const;

  /// Per-class sample counts (indexed by label).
  [[nodiscard]] std::vector<std::size_t> class_counts() const;

  /// In-place Fisher-Yates shuffle.
  void shuffle(Rng& rng);

  /// Copy of samples [begin, end).
  [[nodiscard]] Dataset slice(std::size_t begin, std::size_t end) const;

  /// Copy of all samples with the given label.
  [[nodiscard]] Dataset filter_label(std::size_t label) const;

  /// Moves all samples of `other` into this dataset.
  void append(Dataset other);

 private:
  std::vector<Tensor> images_;
  std::vector<std::size_t> labels_;
};

}  // namespace cdl
