#include "data/synthetic_letters.h"

#include <array>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cdl {

namespace {

constexpr float kPi = std::numbers::pi_v<float>;

constexpr std::array<const char*, SyntheticLetters::kNumClasses> kNames = {
    "A", "C", "E", "F", "H", "J", "L", "P", "T", "U"};

std::array<std::vector<Stroke>, SyntheticLetters::kNumClasses> build_glyphs() {
  std::array<std::vector<Stroke>, SyntheticLetters::kNumClasses> g;

  // A: two legs and a crossbar.
  g[0] = {line_stroke({{0.50F, 0.22F}, {0.32F, 0.78F}}),
          line_stroke({{0.50F, 0.22F}, {0.68F, 0.78F}}),
          line_stroke({{0.39F, 0.56F}, {0.61F, 0.56F}})};

  // C: open arc facing right.
  g[1] = {arc_stroke(0.54F, 0.50F, 0.20F, 0.26F, 0.35F * kPi, 1.65F * kPi, 22)};

  // E: spine and three bars.
  g[2] = {line_stroke({{0.34F, 0.22F}, {0.34F, 0.78F}}),
          line_stroke({{0.34F, 0.22F}, {0.66F, 0.22F}}),
          line_stroke({{0.34F, 0.50F}, {0.62F, 0.50F}}),
          line_stroke({{0.34F, 0.78F}, {0.66F, 0.78F}})};

  // F: E without the bottom bar.
  g[3] = {line_stroke({{0.36F, 0.22F}, {0.36F, 0.78F}}),
          line_stroke({{0.36F, 0.22F}, {0.68F, 0.22F}}),
          line_stroke({{0.36F, 0.50F}, {0.62F, 0.50F}})};

  // H: two stems and a crossbar.
  g[4] = {line_stroke({{0.34F, 0.22F}, {0.34F, 0.78F}}),
          line_stroke({{0.66F, 0.22F}, {0.66F, 0.78F}}),
          line_stroke({{0.34F, 0.50F}, {0.66F, 0.50F}})};

  // J: top bar, stem, bottom-left hook.
  {
    Stroke stem = line_stroke({{0.58F, 0.22F}, {0.58F, 0.62F}});
    Stroke hook = arc_stroke(0.465F, 0.62F, 0.115F, 0.14F, 0.0F, kPi, 12);
    g[5] = {line_stroke({{0.42F, 0.22F}, {0.70F, 0.22F}}), stem, hook};
  }

  // L: stem and bottom bar.
  g[6] = {line_stroke({{0.38F, 0.22F}, {0.38F, 0.78F}}),
          line_stroke({{0.38F, 0.78F}, {0.68F, 0.78F}})};

  // P: stem with a top loop.
  g[7] = {line_stroke({{0.38F, 0.22F}, {0.38F, 0.78F}}),
          arc_stroke(0.40F, 0.36F, 0.17F, 0.14F, 1.5F * kPi, 2.5F * kPi, 14)};

  // T: top bar and centre stem.
  g[8] = {line_stroke({{0.30F, 0.22F}, {0.70F, 0.22F}}),
          line_stroke({{0.50F, 0.22F}, {0.50F, 0.78F}})};

  // U: two stems joined by a bottom arc.
  {
    Stroke left = line_stroke({{0.34F, 0.22F}, {0.34F, 0.56F}});
    Stroke bottom = arc_stroke(0.50F, 0.56F, 0.16F, 0.20F, kPi, 0.0F, 14);
    Stroke right = line_stroke({{0.66F, 0.56F}, {0.66F, 0.22F}});
    g[9] = {left, bottom, right};
  }

  return g;
}

const std::array<std::vector<Stroke>, SyntheticLetters::kNumClasses>& glyphs() {
  static const auto g = build_glyphs();
  return g;
}

std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t sample_seed(std::uint64_t seed, std::size_t label,
                          std::uint64_t index) {
  // Different stream constant than SyntheticMnist so the two datasets are
  // uncorrelated even at equal seeds.
  return mix64(mix64(seed ^ (0xA24BAED4963EE407ULL * (label + 1))) ^ index);
}

void check_label(std::size_t label) {
  if (label >= SyntheticLetters::kNumClasses) {
    throw std::invalid_argument("SyntheticLetters: label out of range");
  }
}

}  // namespace

SyntheticLetters::SyntheticLetters(SyntheticLettersConfig config)
    : config_(config), renderer_(config.render) {}

std::string SyntheticLetters::class_name(std::size_t label) {
  check_label(label);
  return kNames[label];
}

const std::vector<Stroke>& SyntheticLetters::glyph(std::size_t label) {
  check_label(label);
  return glyphs()[label];
}

float SyntheticLetters::difficulty(std::size_t label,
                                   std::uint64_t sample_index) const {
  check_label(label);
  Rng rng(sample_seed(config_.seed, label, sample_index));
  return std::pow(rng.uniform(0.0F, 1.0F), config_.difficulty_exponent);
}

Tensor SyntheticLetters::render(std::size_t label,
                                std::uint64_t sample_index) const {
  check_label(label);
  Rng rng(sample_seed(config_.seed, label, sample_index));
  const float d =
      std::pow(rng.uniform(0.0F, 1.0F), config_.difficulty_exponent);
  return renderer_.render(glyph(label), d, rng);
}

Dataset SyntheticLetters::generate(std::size_t count,
                                   std::uint64_t index_base) const {
  Dataset out;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t label = i % kNumClasses;
    out.add(render(label, index_base + i / kNumClasses), label);
  }
  return out;
}

}  // namespace cdl
