// SyntheticLetters: a second procedural dataset — ten visually distinct
// capital letters — used to check that the CDL methodology generalizes
// beyond digits ("the proposed approach is systematic and hence can be
// applied to all image recognition applications", paper Sec. III).
//
// Shares the StrokeRenderer engine with SyntheticMnist; labels 0-9 map to
// the letters A, C, E, F, H, J, L, P, T, U.
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "data/stroke_renderer.h"

namespace cdl {

struct SyntheticLettersConfig {
  std::uint64_t seed = 1;
  StrokeRenderConfig render;  ///< perturbation knobs (MNIST-like defaults)
  /// difficulty = u^exponent for u ~ U[0,1] (mostly easy, hard tail).
  float difficulty_exponent = 2.2F;
};

class SyntheticLetters {
 public:
  static constexpr std::size_t kNumClasses = 10;

  explicit SyntheticLetters(SyntheticLettersConfig config = {});

  /// The letter a label renders as ("A", "C", ...).
  [[nodiscard]] static std::string class_name(std::size_t label);

  /// Canonical strokes of a class, exposed for tests.
  [[nodiscard]] static const std::vector<Stroke>& glyph(std::size_t label);

  /// Deterministic in (config.seed, label, sample_index); (1, S, S) in [0,1].
  [[nodiscard]] Tensor render(std::size_t label, std::uint64_t sample_index) const;

  [[nodiscard]] float difficulty(std::size_t label,
                                 std::uint64_t sample_index) const;

  /// Balanced dataset (classes round-robin); `index_base` offsets sample
  /// indices so splits stay disjoint.
  [[nodiscard]] Dataset generate(std::size_t count,
                                 std::uint64_t index_base = 0) const;

  [[nodiscard]] const SyntheticLettersConfig& config() const { return config_; }

 private:
  SyntheticLettersConfig config_;
  StrokeRenderer renderer_;
};

}  // namespace cdl
