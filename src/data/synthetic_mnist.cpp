#include "data/synthetic_mnist.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "data/idx_loader.h"

namespace cdl {

namespace {

constexpr float kPi = std::numbers::pi_v<float>;

/// Canonical stroke sets, hand-designed to echo handwritten digit topology.
std::array<std::vector<Stroke>, 10> build_glyphs() {
  std::array<std::vector<Stroke>, 10> g;

  // 0: single closed oval.
  g[0] = {arc_stroke(0.50F, 0.50F, 0.17F, 0.27F, 0.0F, 2.0F * kPi, 28)};

  // 1: short flag into a vertical stem.
  g[1] = {line_stroke({{0.40F, 0.33F}, {0.53F, 0.22F}, {0.53F, 0.78F}})};

  // 2: top curve, diagonal to bottom-left, bottom bar — one stroke.
  {
    Stroke s = arc_stroke(0.50F, 0.36F, 0.17F, 0.14F, kPi, 2.0F * kPi, 14);
    s.push_back({0.33F, 0.78F});
    s.push_back({0.70F, 0.78F});
    g[2] = {s};
  }

  // 3: two right-facing arcs stacked.
  g[3] = {arc_stroke(0.47F, 0.37F, 0.16F, 0.14F, 1.17F * kPi, 2.5F * kPi, 16),
          arc_stroke(0.47F, 0.64F, 0.18F, 0.15F, 1.5F * kPi, 2.85F * kPi, 16)};

  // 4: diagonal, crossbar, vertical stem.
  g[4] = {line_stroke({{0.60F, 0.24F}, {0.30F, 0.60F}}),
          line_stroke({{0.30F, 0.60F}, {0.72F, 0.60F}}),
          line_stroke({{0.61F, 0.22F}, {0.61F, 0.80F}})};

  // 5: top bar, short left vertical, open belly.
  g[5] = {line_stroke({{0.67F, 0.24F}, {0.36F, 0.24F}}),
          line_stroke({{0.36F, 0.24F}, {0.34F, 0.48F}}),
          arc_stroke(0.48F, 0.62F, 0.17F, 0.16F, 1.24F * kPi, 2.88F * kPi, 18)};

  // 6: downward hook into a closed bottom loop — one stroke.
  {
    Stroke s = arc_stroke(0.66F, 0.52F, 0.28F, 0.30F, 1.36F * kPi, kPi, 12);
    Stroke loop = arc_stroke(0.50F, 0.64F, 0.13F, 0.13F, kPi, 3.0F * kPi, 20);
    s.insert(s.end(), loop.begin(), loop.end());
    g[6] = {s};
  }

  // 7: top bar and diagonal — one stroke.
  g[7] = {line_stroke({{0.32F, 0.26F}, {0.68F, 0.26F}, {0.44F, 0.78F}})};

  // 8: two stacked closed loops.
  g[8] = {arc_stroke(0.50F, 0.37F, 0.13F, 0.12F, 0.0F, 2.0F * kPi, 20),
          arc_stroke(0.50F, 0.64F, 0.15F, 0.14F, 0.0F, 2.0F * kPi, 20)};

  // 9: closed top loop with a curved tail.
  g[9] = {arc_stroke(0.52F, 0.38F, 0.14F, 0.14F, 0.0F, 2.0F * kPi, 20),
          line_stroke({{0.66F, 0.38F},
                       {0.66F, 0.55F},
                       {0.62F, 0.70F},
                       {0.54F, 0.78F}})};

  return g;
}

const std::array<std::vector<Stroke>, 10>& glyphs() {
  static const auto g = build_glyphs();
  return g;
}

/// SplitMix64: mixes (seed, digit, index) into an independent stream seed.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t sample_seed(std::uint64_t seed, std::size_t digit,
                          std::uint64_t index) {
  return mix64(mix64(seed ^ (0xD1B54A32D192ED03ULL * (digit + 1))) ^ index);
}

StrokeRenderConfig renderer_config(const SyntheticMnistConfig& c) {
  StrokeRenderConfig r;
  r.image_size = c.image_size;
  r.stroke_thickness = c.stroke_thickness;
  r.max_rotation_rad = c.max_rotation_rad;
  r.max_shear = c.max_shear;
  r.min_scale = c.min_scale;
  r.max_scale = c.max_scale;
  r.max_translate = c.max_translate;
  r.point_jitter = c.point_jitter;
  r.thickness_jitter = c.thickness_jitter;
  r.noise_stddev = c.noise_stddev;
  return r;
}

}  // namespace

SyntheticMnist::SyntheticMnist(SyntheticMnistConfig config)
    : config_(config), renderer_(renderer_config(config)) {}

const std::vector<Stroke>& SyntheticMnist::glyph(std::size_t digit) {
  if (digit > 9) throw std::invalid_argument("SyntheticMnist::glyph: digit > 9");
  return glyphs()[digit];
}

float SyntheticMnist::difficulty(std::size_t digit,
                                 std::uint64_t sample_index) const {
  if (digit > 9) throw std::invalid_argument("SyntheticMnist::difficulty: digit > 9");
  Rng rng(sample_seed(config_.seed, digit, sample_index));
  const float base =
      std::pow(rng.uniform(0.0F, 1.0F), config_.difficulty_exponent);
  return std::min(1.0F, base * config_.class_difficulty[digit]);
}

Tensor SyntheticMnist::render(std::size_t digit,
                              std::uint64_t sample_index) const {
  if (digit > 9) throw std::invalid_argument("SyntheticMnist::render: digit > 9");
  Rng rng(sample_seed(config_.seed, digit, sample_index));

  // The first draw is the difficulty (difficulty() replays it identically).
  const float d =
      std::min(1.0F, std::pow(rng.uniform(0.0F, 1.0F),
                              config_.difficulty_exponent) *
                         config_.class_difficulty[digit]);

  BackgroundProvider clutter;
  if (config_.clutter > 0.0F) {
    // Faint distractor strokes behind the digit (DESIGN.md / DATASET.md).
    const float intensity = config_.clutter;
    clutter = [intensity](Rng& r) {
      BackgroundLayer bg;
      const auto n_distractors = static_cast<std::size_t>(
          intensity * 6.0F * r.uniform(0.5F, 1.0F) + 0.5F);
      bg.ink = 0.25F + 0.30F * intensity;
      for (std::size_t i = 0; i < n_distractors; ++i) {
        const Point a{r.uniform(0.0F, 1.0F), r.uniform(0.0F, 1.0F)};
        const float len = r.uniform(0.1F, 0.35F);
        const float angle = r.uniform(0.0F, 2.0F * kPi);
        bg.strokes.push_back(
            {a, {a.x + len * std::cos(angle), a.y + len * std::sin(angle)}});
      }
      return bg;
    };
  }

  return renderer_.render(glyph(digit), d, rng, clutter);
}

Dataset SyntheticMnist::generate(std::size_t count,
                                 std::uint64_t index_base) const {
  Dataset out;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t digit = i % 10;
    out.add(render(digit, index_base + i / 10), digit);
  }
  return out;
}

Dataset SyntheticMnist::generate_digit(std::size_t digit, std::size_t count,
                                       std::uint64_t index_base) const {
  Dataset out;
  for (std::size_t i = 0; i < count; ++i) {
    out.add(render(digit, index_base + i), digit);
  }
  return out;
}

MnistPair load_mnist_or_synthetic(std::size_t train_count,
                                  std::size_t test_count, std::uint64_t seed,
                                  std::size_t val_count) {
  if (const auto dir = mnist_dir_from_env()) {
    MnistPair pair;
    pair.synthetic = false;
    Dataset full_train = load_mnist_split(*dir, MnistSplit::kTrain);
    pair.test = load_mnist_split(*dir, MnistSplit::kTest);
    const std::size_t train_n = std::min(train_count, full_train.size());
    pair.train = full_train.slice(0, train_n);
    // Validation comes from the unused tail of the training file.
    const std::size_t val_n =
        std::min(val_count, full_train.size() - train_n);
    pair.validation = full_train.slice(train_n, train_n + val_n);
    if (test_count < pair.test.size()) {
      pair.test = pair.test.slice(0, test_count);
    }
    return pair;
  }
  SyntheticMnist gen(SyntheticMnistConfig{.seed = seed});
  MnistPair pair;
  pair.train = gen.generate(train_count, 0);
  // Large index offsets keep the three splits pairwise disjoint.
  pair.test = gen.generate(test_count, 1ULL << 32);
  if (val_count > 0) pair.validation = gen.generate(val_count, 1ULL << 33);
  return pair;
}

}  // namespace cdl
