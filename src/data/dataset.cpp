#include "data/dataset.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace cdl {

void Dataset::add(Tensor image, std::size_t label) {
  if (!images_.empty() && image.shape() != images_.front().shape()) {
    throw std::invalid_argument("Dataset::add: image shape " +
                                image.shape().to_string() +
                                " differs from dataset shape " +
                                images_.front().shape().to_string());
  }
  images_.push_back(std::move(image));
  labels_.push_back(label);
}

const Shape& Dataset::image_shape() const {
  if (images_.empty()) throw std::logic_error("Dataset::image_shape: empty");
  return images_.front().shape();
}

std::size_t Dataset::num_classes() const {
  if (labels_.empty()) return 0;
  return *std::max_element(labels_.begin(), labels_.end()) + 1;
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(num_classes(), 0);
  for (std::size_t l : labels_) ++counts[l];
  return counts;
}

void Dataset::shuffle(Rng& rng) {
  for (std::size_t i = images_.size(); i > 1; --i) {
    const std::size_t j = rng.index(i);
    std::swap(images_[i - 1], images_[j]);
    std::swap(labels_[i - 1], labels_[j]);
  }
}

Dataset Dataset::slice(std::size_t begin, std::size_t end) const {
  if (begin > end || end > images_.size()) {
    throw std::out_of_range("Dataset::slice: bad range [" +
                            std::to_string(begin) + ", " + std::to_string(end) +
                            ") of " + std::to_string(images_.size()));
  }
  Dataset out;
  for (std::size_t i = begin; i < end; ++i) out.add(images_[i], labels_[i]);
  return out;
}

Dataset Dataset::filter_label(std::size_t label) const {
  Dataset out;
  for (std::size_t i = 0; i < images_.size(); ++i) {
    if (labels_[i] == label) out.add(images_[i], labels_[i]);
  }
  return out;
}

void Dataset::append(Dataset other) {
  for (std::size_t i = 0; i < other.size(); ++i) {
    add(std::move(other.images_[i]), other.labels_[i]);
  }
}

}  // namespace cdl
