#include "data/stroke_renderer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cdl {

Stroke arc_stroke(float cx, float cy, float rx, float ry, float a0, float a1,
                  std::size_t segments) {
  Stroke s;
  s.reserve(segments + 1);
  for (std::size_t i = 0; i <= segments; ++i) {
    const float t = a0 + (a1 - a0) * static_cast<float>(i) /
                             static_cast<float>(segments);
    s.push_back({cx + rx * std::cos(t), cy + ry * std::sin(t)});
  }
  return s;
}

Stroke line_stroke(std::initializer_list<Point> points) {
  return Stroke(points);
}

namespace {

float squared_distance_to_segment(Point p, Point a, Point b) {
  const float abx = b.x - a.x;
  const float aby = b.y - a.y;
  const float apx = p.x - a.x;
  const float apy = p.y - a.y;
  const float len2 = abx * abx + aby * aby;
  float t = len2 > 0.0F ? (apx * abx + apy * aby) / len2 : 0.0F;
  t = std::clamp(t, 0.0F, 1.0F);
  const float dx = apx - t * abx;
  const float dy = apy - t * aby;
  return dx * dx + dy * dy;
}

float coverage_of(const std::vector<Stroke>& strokes, Point p, float thickness,
                  float aa) {
  float coverage = 0.0F;
  for (const Stroke& s : strokes) {
    for (std::size_t i = 0; i + 1 < s.size(); ++i) {
      const float dist =
          std::sqrt(squared_distance_to_segment(p, s[i], s[i + 1]));
      const float c = std::clamp((thickness - dist) / aa + 0.5F, 0.0F, 1.0F);
      coverage = std::max(coverage, c);
    }
  }
  return coverage;
}

}  // namespace

StrokeRenderer::StrokeRenderer(StrokeRenderConfig config) : config_(config) {
  if (config_.image_size < 8) {
    throw std::invalid_argument("StrokeRenderer: image_size too small");
  }
  if (config_.min_scale <= 0.0F || config_.max_scale < config_.min_scale) {
    throw std::invalid_argument("StrokeRenderer: bad scale range");
  }
}

Tensor StrokeRenderer::render(std::span<const Stroke> glyph, float difficulty,
                              Rng& rng,
                              const BackgroundProvider& background) const {
  const float d = std::clamp(difficulty, 0.0F, 1.0F);
  // Even the easiest samples get a little variation so classes are not a
  // single repeated image.
  const float m = 0.15F + 0.85F * d;

  const float theta = config_.max_rotation_rad * m * rng.uniform(-1.0F, 1.0F);
  const float shear = config_.max_shear * m * rng.uniform(-1.0F, 1.0F);
  const float scale_span = (config_.max_scale - config_.min_scale) * 0.5F;
  const float scale_mid = (config_.max_scale + config_.min_scale) * 0.5F;
  const float scale = scale_mid + scale_span * m * rng.uniform(-1.0F, 1.0F);
  const float tx = config_.max_translate * m * rng.uniform(-1.0F, 1.0F);
  const float ty = config_.max_translate * m * rng.uniform(-1.0F, 1.0F);
  const float thickness =
      config_.stroke_thickness *
      (1.0F + config_.thickness_jitter * m * rng.uniform(-0.6F, 1.0F)) * scale;
  const float ink = rng.uniform(0.82F, 1.0F);

  const float cos_t = std::cos(theta);
  const float sin_t = std::sin(theta);
  const auto transform = [&](Point p) -> Point {
    float x = (p.x - 0.5F) * scale;
    float y = (p.y - 0.5F) * scale;
    x += shear * y;
    const float xr = cos_t * x - sin_t * y;
    const float yr = sin_t * x + cos_t * y;
    return {xr + 0.5F + tx, yr + 0.5F + ty};
  };

  // Transform and jitter the control points. Jitter varies smoothly along
  // each stroke so lines bend rather than break: a random low-frequency
  // displacement per endpoint, interpolated.
  const float jitter = config_.point_jitter * m;
  std::vector<Stroke> strokes;
  strokes.reserve(glyph.size());
  for (const Stroke& s : glyph) {
    Stroke t;
    t.reserve(s.size());
    const float jx0 = rng.normal(0.0F, jitter), jy0 = rng.normal(0.0F, jitter);
    const float jx1 = rng.normal(0.0F, jitter), jy1 = rng.normal(0.0F, jitter);
    for (std::size_t i = 0; i < s.size(); ++i) {
      const float w = s.size() > 1
                          ? static_cast<float>(i) /
                                static_cast<float>(s.size() - 1)
                          : 0.0F;
      Point p = transform(s[i]);
      p.x += (1.0F - w) * jx0 + w * jx1;
      p.y += (1.0F - w) * jy0 + w * jy1;
      t.push_back(p);
    }
    strokes.push_back(std::move(t));
  }

  // Background layer (e.g. clutter), drawn behind the glyph.
  BackgroundLayer bg;
  if (background) bg = background(rng);

  // Rasterize as a max-over-segments anti-aliased distance field.
  const std::size_t size = config_.image_size;
  Tensor img(Shape{1, size, size});
  const float aa = 1.0F / static_cast<float>(size);
  for (std::size_t py = 0; py < size; ++py) {
    for (std::size_t px = 0; px < size; ++px) {
      const Point p = {(static_cast<float>(px) + 0.5F) / static_cast<float>(size),
                       (static_cast<float>(py) + 0.5F) / static_cast<float>(size)};
      float value = 0.0F;
      if (!bg.strokes.empty()) {
        value = coverage_of(bg.strokes, p, thickness * bg.thickness_scale, aa) *
                bg.ink;
      }
      value = std::max(value, coverage_of(strokes, p, thickness, aa) * ink);
      img.at(0, py, px) = value;
    }
  }

  // Additive noise, stronger for hard samples.
  const float sigma = config_.noise_stddev * (0.15F + 0.85F * d);
  if (sigma > 0.0F) {
    for (float& v : img.values()) {
      v = std::clamp(v + rng.normal(0.0F, sigma), 0.0F, 1.0F);
    }
  }
  return img;
}

}  // namespace cdl
