// StrokeRenderer: rasterizes stroke-based glyphs into grayscale images with
// difficulty-scaled perturbations — the rendering engine behind
// SyntheticMnist and SyntheticLetters.
//
// A glyph is a set of strokes (polylines over the unit canvas, y down). Per
// sample the renderer draws an affine perturbation (rotation / shear / scale
// / translation), smooth control-point jitter, stroke-thickness and ink
// variation, rasterizes an anti-aliased distance field, and adds pixel
// noise. All perturbation magnitudes scale with a caller-supplied difficulty
// in [0,1], and all randomness comes from the caller's Rng, so callers own
// determinism and difficulty distributions.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/rng.h"
#include "core/tensor.h"

namespace cdl {

/// A 2-D point in glyph space ([0,1] x [0,1], y growing downwards).
struct Point {
  float x = 0.0F;
  float y = 0.0F;
};

/// One stroke: a polyline through `points` drawn with the glyph thickness.
using Stroke = std::vector<Point>;

/// Points along an ellipse arc; angles in radians with y growing downwards
/// (0 = right, pi/2 = bottom, pi = left, 3pi/2 = top). `a1` may exceed 2*pi
/// to express sweeps that wrap.
[[nodiscard]] Stroke arc_stroke(float cx, float cy, float rx, float ry,
                                float a0, float a1, std::size_t segments = 20);

/// Polyline through the given points.
[[nodiscard]] Stroke line_stroke(std::initializer_list<Point> points);

struct StrokeRenderConfig {
  std::size_t image_size = 28;

  /// Base half-thickness of strokes in glyph units.
  float stroke_thickness = 0.055F;

  // Perturbation magnitudes at difficulty = 1 (scaled down for easier
  // samples; even difficulty 0 keeps a small residual variation).
  float max_rotation_rad = 0.30F;
  float max_shear = 0.22F;
  float min_scale = 0.78F;
  float max_scale = 1.12F;
  float max_translate = 0.10F;     ///< glyph units
  float point_jitter = 0.035F;     ///< stddev of control-point displacement
  float thickness_jitter = 0.45F;  ///< relative thickness variation
  float noise_stddev = 0.10F;      ///< additive pixel noise
};

/// Optional background layer drawn *behind* the glyph (e.g. clutter
/// strokes). Produced by a caller callback so the caller controls both the
/// content and its position in the random-draw sequence.
struct BackgroundLayer {
  std::vector<Stroke> strokes;
  float ink = 0.0F;              ///< peak intensity of background strokes
  float thickness_scale = 0.7F;  ///< relative to the glyph thickness
};

using BackgroundProvider = std::function<BackgroundLayer(Rng&)>;

class StrokeRenderer {
 public:
  explicit StrokeRenderer(StrokeRenderConfig config = {});

  /// Renders `glyph` at the given difficulty, consuming randomness from
  /// `rng`. If `background` is set it is invoked (after the glyph's
  /// perturbation draws) to produce strokes composited behind the glyph.
  /// Returns a (1, S, S) tensor with values in [0, 1].
  [[nodiscard]] Tensor render(std::span<const Stroke> glyph, float difficulty,
                              Rng& rng,
                              const BackgroundProvider& background = {}) const;

  [[nodiscard]] const StrokeRenderConfig& config() const { return config_; }

 private:
  StrokeRenderConfig config_;
};

}  // namespace cdl
