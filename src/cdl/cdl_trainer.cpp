#include "cdl/cdl_trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "nn/loss.h"
#include "nn/softmax.h"

namespace cdl {

float train_baseline(Network& net, const Dataset& train,
                     const BaselineTrainConfig& config, Rng& rng) {
  if (train.empty()) throw std::invalid_argument("train_baseline: empty dataset");
  if (config.batch_size == 0) {
    throw std::invalid_argument("train_baseline: batch_size must be positive");
  }
  SoftmaxCrossEntropyLoss loss_fn;
  SgdOptimizer opt(config.sgd);

  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  float mean_loss = 0.0F;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Fisher-Yates reshuffle per epoch.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.index(i)]);
    }
    double epoch_loss = 0.0;
    std::size_t in_batch = 0;
    for (std::size_t idx : order) {
      const Tensor logits = net.forward(train.image(idx));
      epoch_loss += loss_fn.value(logits, train.label(idx));
      net.backward(loss_fn.grad(logits, train.label(idx)));
      if (++in_batch == config.batch_size) {
        opt.step(net);  // step() also zeroes the accumulated gradients
        in_batch = 0;
      }
    }
    if (in_batch != 0) opt.step(net);  // trailing partial batch
    opt.end_epoch();
    mean_loss = static_cast<float>(epoch_loss / static_cast<double>(train.size()));
    if (config.log_every != 0 && (epoch + 1) % config.log_every == 0) {
      std::printf("  baseline epoch %zu/%zu: loss %.4f (lr %.4f)\n", epoch + 1,
                  config.epochs, static_cast<double>(mean_loss),
                  static_cast<double>(opt.learning_rate()));
    }
  }
  return mean_loss;
}

float train_cdl_joint(ConditionalNetwork& net, const Dataset& train,
                      const JointTrainConfig& config, Rng& rng) {
  if (train.empty()) throw std::invalid_argument("train_cdl_joint: empty dataset");
  Network& base = net.baseline();
  SoftmaxCrossEntropyLoss loss_fn;
  SgdOptimizer opt(config.sgd);

  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  float mean_loss = 0.0F;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.index(i)]);
    }
    double epoch_loss = 0.0;
    for (std::size_t idx : order) {
      // Forward layer by layer, stashing each stage boundary's activations.
      std::vector<Tensor> boundary(net.num_stages());
      Tensor x = train.image(idx);
      std::size_t next_stage = 0;
      for (std::size_t layer = 0; layer < base.size(); ++layer) {
        if (next_stage < net.num_stages() &&
            net.stage_prefix(next_stage) == layer) {
          boundary[next_stage] = x;
          ++next_stage;
        }
        x = base.layer(layer).forward(x);
      }

      // FC loss and stage losses; stage classifiers update themselves and
      // hand back the gradient to inject into the trunk.
      epoch_loss += loss_fn.value(x, train.label(idx));
      std::vector<Tensor> injected(net.num_stages());
      for (std::size_t s = 0; s < net.num_stages(); ++s) {
        const Tensor p = softmax(net.classifier(s).scores(boundary[s]));
        epoch_loss += config.stage_loss_weight *
                      -std::log(std::max(p[train.label(idx)], 1e-12F));
        injected[s] = net.classifier(s).joint_train_step(
            boundary[s], train.label(idx), config.lc_learning_rate,
            config.stage_loss_weight);
      }

      // Backward through the trunk, adding each stage's gradient when the
      // walk crosses its attach point.
      Tensor grad = loss_fn.grad(x, train.label(idx));
      for (std::size_t layer = base.size(); layer-- > 0;) {
        grad = base.layer(layer).backward(grad);
        while (next_stage > 0 && net.stage_prefix(next_stage - 1) == layer) {
          grad += injected[next_stage - 1];
          --next_stage;
        }
      }
      opt.step(base);
    }
    opt.end_epoch();
    mean_loss = static_cast<float>(epoch_loss / static_cast<double>(train.size()));
  }
  return mean_loss;
}

CdlTrainReport train_cdl(ConditionalNetwork& net, const Dataset& train,
                         const CdlTrainConfig& config, Rng& rng) {
  if (train.empty()) throw std::invalid_argument("train_cdl: empty dataset");
  CdlTrainReport report;

  // Instances still flowing through the cascade: activations are advanced
  // range-by-range so each baseline prefix is computed exactly once.
  std::vector<Tensor> acts;
  std::vector<std::size_t> labels;
  acts.reserve(train.size());
  labels.reserve(train.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    acts.push_back(train.image(i));
    labels.push_back(train.label(i));
  }
  std::size_t done_layers = 0;

  const double gamma_base =
      static_cast<double>(net.baseline_forward_ops().total_compute());
  const ActivationModule train_gate(config.train_delta,
                                    net.activation_module().policy());

  std::size_t pos = 0;           // current stage position in `net`
  std::size_t candidate = 0;     // running candidate number for naming (O1, O2, ...)
  while (pos < net.num_stages()) {
    StageTrainReport stage;
    stage.stage_name = "O" + std::to_string(candidate + 1);
    ++candidate;
    stage.prefix_layers = net.stage_prefix(pos);
    stage.reached = acts.size();

    // Advance surviving instances to this stage's feature boundary.
    for (Tensor& a : acts) {
      a = net.baseline().forward_range(a, done_layers, stage.prefix_layers);
    }
    done_layers = stage.prefix_layers;

    // Train the linear classifier with the LMS (or ablation) rule on the
    // instances that reach this stage (Algorithm 1 steps 4-7).
    LinearClassifier& lc = net.classifier(pos);
    float lr = config.lc_learning_rate;
    std::vector<std::size_t> order(acts.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    for (std::size_t epoch = 0; epoch < config.lc_epochs; ++epoch) {
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.index(i)]);
      }
      double epoch_loss = 0.0;
      for (std::size_t idx : order) {
        epoch_loss += lc.train_step(acts[idx], labels[idx], lr);
      }
      lr *= config.lc_lr_decay;
      if (!acts.empty()) {
        stage.final_loss =
            static_cast<float>(epoch_loss / static_cast<double>(acts.size()));
      }
    }

    // Measure Cl_i at the training confidence level (step 8).
    std::vector<bool> terminated(acts.size(), false);
    for (std::size_t i = 0; i < acts.size(); ++i) {
      const ActivationDecision d = train_gate.evaluate(lc.probabilities(acts[i]));
      terminated[i] = d.terminate;
      if (d.terminate) ++stage.classified;
    }

    // Gain G_i (step 9): improvement on classified instances minus the extra
    // cost inflicted on instances passed through this stage.
    const double gamma_i =
        static_cast<double>(net.exit_ops(pos).total_compute());
    stage.gain = (gamma_base - gamma_i) * static_cast<double>(stage.classified) -
                 gamma_i * static_cast<double>(stage.reached - stage.classified);

    // Admission (step 10). The first candidate stage is always admitted; the
    // gain test applies from the second stage onwards.
    stage.admitted = !config.prune_by_gain || pos == 0 ||
                     stage.gain > config.epsilon_gain;

    if (stage.admitted) {
      // Only non-terminated instances flow to the next stage.
      std::vector<Tensor> next_acts;
      std::vector<std::size_t> next_labels;
      next_acts.reserve(acts.size());
      next_labels.reserve(acts.size());
      for (std::size_t i = 0; i < acts.size(); ++i) {
        if (!terminated[i]) {
          next_acts.push_back(std::move(acts[i]));
          next_labels.push_back(labels[i]);
        }
      }
      acts = std::move(next_acts);
      labels = std::move(next_labels);
      ++pos;
    } else {
      net.detach_classifier(pos);  // instances pass through unchanged
    }
    report.stages.push_back(std::move(stage));
  }

  report.fc_fraction =
      static_cast<double>(acts.size()) / static_cast<double>(train.size());
  return report;
}

}  // namespace cdl
