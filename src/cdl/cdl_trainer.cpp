#include "cdl/cdl_trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "nn/loss.h"
#include "nn/softmax.h"
#include "obs/train_telemetry.h"

namespace cdl {

namespace {

const char* non_finite_spelling(double value) {
  if (std::isnan(value)) return "nan";
  return value > 0 ? "inf" : "-inf";
}

/// Non-finite-loss guard: identifies the first offending tensor (weights
/// first — the usual root cause — then accumulated gradients), streams the
/// diagnostic into the telemetry log when one is attached, and aborts the
/// training loop.
[[noreturn]] void abort_non_finite(Network& net, obs::TrainTelemetry* tel,
                                   std::size_t epoch, std::size_t step,
                                   double loss_value) {
  obs::NonFiniteRecord rec;
  rec.phase = "baseline";
  rec.epoch = epoch;
  rec.step = step;
  rec.layer_name = "loss";
  rec.stat = "loss";
  rec.value = non_finite_spelling(loss_value);

  const std::vector<Network::ParamInfo> info = net.parameter_info();
  const std::vector<Tensor*> params = net.parameters();
  const std::vector<Tensor*> grads = net.gradients();
  bool found = false;
  for (std::size_t pass = 0; pass < 2 && !found; ++pass) {
    const std::vector<Tensor*>& tensors = pass == 0 ? params : grads;
    for (std::size_t i = 0; i < tensors.size() && !found; ++i) {
      for (const float v : tensors[i]->values()) {
        if (!std::isfinite(v)) {
          rec.layer_name = info[i].layer_name;
          rec.param_name = info[i].param_name;
          rec.stat = pass == 0 ? "weight" : "gradient";
          rec.value = non_finite_spelling(static_cast<double>(v));
          found = true;
          break;
        }
      }
    }
  }
  if (tel != nullptr) tel->record_non_finite(rec);
  throw TrainingDiverged(
      "training diverged: non-finite loss at baseline epoch " +
          std::to_string(epoch) + ", step " + std::to_string(step) +
          " (first non-finite: " + rec.layer_name +
          (rec.param_name.empty() ? "" : "." + rec.param_name) + " " +
          rec.stat + " = " + rec.value + ")",
      "baseline", epoch, step);
}

}  // namespace

float train_baseline(Network& net, const Dataset& train,
                     const BaselineTrainConfig& config, Rng& rng) {
  if (train.empty()) throw std::invalid_argument("train_baseline: empty dataset");
  if (config.batch_size == 0) {
    throw std::invalid_argument("train_baseline: batch_size must be positive");
  }
  SoftmaxCrossEntropyLoss loss_fn;
  SgdOptimizer opt(config.sgd);
  obs::TrainTelemetry* tel = config.telemetry;
  if (tel != nullptr) {
    tel->set_param_info(net.parameter_info());
    opt.set_stats_sink(tel);
  }

  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  const std::size_t steps_per_epoch =
      (train.size() + config.batch_size - 1) / config.batch_size;

  float mean_loss = 0.0F;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Fisher-Yates reshuffle per epoch.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.index(i)]);
    }
    double epoch_loss = 0.0;
    std::size_t correct = 0;
    std::size_t in_batch = 0;
    std::size_t step = 0;  // completed optimizer steps this epoch
    std::size_t samples_seen = 0;
    double window_loss = 0.0;  // accumulated since the last batch event
    std::size_t window_samples = 0;
    for (std::size_t idx : order) {
      const Tensor logits = net.forward(train.image(idx));
      const double sample_loss =
          static_cast<double>(loss_fn.value(logits, train.label(idx)));
      if (config.abort_on_non_finite && !std::isfinite(sample_loss)) {
        abort_non_finite(net, tel, epoch + 1, samples_seen + 1, sample_loss);
      }
      epoch_loss += sample_loss;
      window_loss += sample_loss;
      ++window_samples;
      ++samples_seen;
      if (logits.argmax() == train.label(idx)) ++correct;
      net.backward(loss_fn.grad(logits, train.label(idx)));
      if (++in_batch == config.batch_size) {
        ++step;
        const bool due = tel != nullptr && tel->batch_due(step);
        // Stats are recorded for due steps and the epoch's last step (the
        // epoch record carries the latter).
        if (due || (tel != nullptr && step == steps_per_epoch)) {
          tel->arm_stats();
        }
        opt.step(net);  // step() also zeroes the accumulated gradients
        if (due) {
          tel->record_batch(epoch + 1, step, samples_seen,
                            window_loss / static_cast<double>(window_samples),
                            static_cast<double>(opt.learning_rate()));
          window_loss = 0.0;
          window_samples = 0;
        }
        in_batch = 0;
      }
    }
    if (in_batch != 0) {  // trailing partial batch
      if (tel != nullptr) tel->arm_stats();
      opt.step(net);
    }
    const double lr_run = static_cast<double>(opt.learning_rate());
    opt.end_epoch();
    mean_loss = static_cast<float>(epoch_loss / static_cast<double>(train.size()));
    if (tel != nullptr) {
      tel->record_epoch(epoch + 1, config.epochs,
                        static_cast<double>(mean_loss),
                        static_cast<double>(correct) /
                            static_cast<double>(train.size()),
                        lr_run);
    }
    if (config.log_every != 0 && (epoch + 1) % config.log_every == 0) {
      std::printf("  baseline epoch %zu/%zu: loss %.4f (lr %.4f)\n", epoch + 1,
                  config.epochs, static_cast<double>(mean_loss),
                  static_cast<double>(opt.learning_rate()));
    }
  }
  return mean_loss;
}

float train_cdl_joint(ConditionalNetwork& net, const Dataset& train,
                      const JointTrainConfig& config, Rng& rng) {
  if (train.empty()) throw std::invalid_argument("train_cdl_joint: empty dataset");
  Network& base = net.baseline();
  SoftmaxCrossEntropyLoss loss_fn;
  SgdOptimizer opt(config.sgd);

  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  float mean_loss = 0.0F;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.index(i)]);
    }
    double epoch_loss = 0.0;
    for (std::size_t idx : order) {
      // Forward layer by layer, stashing each stage boundary's activations.
      std::vector<Tensor> boundary(net.num_stages());
      Tensor x = train.image(idx);
      std::size_t next_stage = 0;
      for (std::size_t layer = 0; layer < base.size(); ++layer) {
        if (next_stage < net.num_stages() &&
            net.stage_prefix(next_stage) == layer) {
          boundary[next_stage] = x;
          ++next_stage;
        }
        x = base.layer(layer).forward(x);
      }

      // FC loss and stage losses; stage classifiers update themselves and
      // hand back the gradient to inject into the trunk.
      epoch_loss += loss_fn.value(x, train.label(idx));
      std::vector<Tensor> injected(net.num_stages());
      for (std::size_t s = 0; s < net.num_stages(); ++s) {
        const Tensor p = softmax(net.classifier(s).scores(boundary[s]));
        epoch_loss += config.stage_loss_weight *
                      -std::log(std::max(p[train.label(idx)], 1e-12F));
        injected[s] = net.classifier(s).joint_train_step(
            boundary[s], train.label(idx), config.lc_learning_rate,
            config.stage_loss_weight);
      }

      // Backward through the trunk, adding each stage's gradient when the
      // walk crosses its attach point.
      Tensor grad = loss_fn.grad(x, train.label(idx));
      for (std::size_t layer = base.size(); layer-- > 0;) {
        grad = base.layer(layer).backward(grad);
        while (next_stage > 0 && net.stage_prefix(next_stage - 1) == layer) {
          grad += injected[next_stage - 1];
          --next_stage;
        }
      }
      opt.step(base);
    }
    opt.end_epoch();
    mean_loss = static_cast<float>(epoch_loss / static_cast<double>(train.size()));
  }
  return mean_loss;
}

CdlTrainReport train_cdl(ConditionalNetwork& net, const Dataset& train,
                         const CdlTrainConfig& config, Rng& rng) {
  if (train.empty()) throw std::invalid_argument("train_cdl: empty dataset");
  obs::TrainTelemetry* tel = config.telemetry;
  CdlTrainReport report;

  // Instances still flowing through the cascade: activations are advanced
  // range-by-range so each baseline prefix is computed exactly once.
  std::vector<Tensor> acts;
  std::vector<std::size_t> labels;
  acts.reserve(train.size());
  labels.reserve(train.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    acts.push_back(train.image(i));
    labels.push_back(train.label(i));
  }
  std::size_t done_layers = 0;

  const double gamma_base =
      static_cast<double>(net.baseline_forward_ops().total_compute());
  const ActivationModule train_gate(config.train_delta,
                                    net.activation_module().policy());

  std::size_t pos = 0;           // current stage position in `net`
  std::size_t candidate = 0;     // running candidate number for naming (O1, O2, ...)
  while (pos < net.num_stages()) {
    StageTrainReport stage;
    stage.stage_name = "O" + std::to_string(candidate + 1);
    ++candidate;
    stage.prefix_layers = net.stage_prefix(pos);
    stage.reached = acts.size();

    // Advance surviving instances to this stage's feature boundary.
    for (Tensor& a : acts) {
      a = net.baseline().forward_range(a, done_layers, stage.prefix_layers);
    }
    done_layers = stage.prefix_layers;

    // Train the linear classifier with the LMS (or ablation) rule on the
    // instances that reach this stage (Algorithm 1 steps 4-7).
    LinearClassifier& lc = net.classifier(pos);
    float lr = config.lc_learning_rate;
    std::vector<std::size_t> order(acts.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    for (std::size_t epoch = 0; epoch < config.lc_epochs; ++epoch) {
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.index(i)]);
      }
      double epoch_loss = 0.0;
      for (std::size_t idx : order) {
        epoch_loss += lc.train_step(acts[idx], labels[idx], lr);
      }
      const double epoch_mean =
          acts.empty() ? 0.0 : epoch_loss / static_cast<double>(acts.size());
      if (config.abort_on_non_finite && !std::isfinite(epoch_mean)) {
        obs::NonFiniteRecord rec;
        rec.phase = "lc";
        rec.stage = stage.stage_name;
        rec.epoch = epoch + 1;
        rec.step = acts.size();
        rec.layer_name = stage.stage_name;
        rec.param_name = "w";
        rec.stat = "loss";
        rec.value = non_finite_spelling(epoch_mean);
        if (tel != nullptr) tel->record_non_finite(rec);
        throw TrainingDiverged(
            "training diverged: non-finite LC loss at stage " +
                stage.stage_name + ", epoch " + std::to_string(epoch + 1),
            "lc", epoch + 1, acts.size());
      }
      if (!acts.empty()) {
        stage.final_loss = static_cast<float>(epoch_mean);
      }
      if (tel != nullptr) {
        const LinearClassifier::WeightStats ws = lc.weight_stats();
        tel->record_lc_epoch(stage.stage_name, stage.prefix_layers, epoch + 1,
                             config.lc_epochs, epoch_mean,
                             static_cast<double>(lr), acts.size(), ws.l2,
                             ws.max_abs);
      }
      if (config.log_every != 0 && (epoch + 1) % config.log_every == 0) {
        std::printf("  %s epoch %zu/%zu: loss %.4f (lr %.4f)\n",
                    stage.stage_name.c_str(), epoch + 1, config.lc_epochs,
                    epoch_mean, static_cast<double>(lr));
      }
      lr *= config.lc_lr_decay;
    }

    // Measure Cl_i at the training confidence level (step 8).
    std::vector<bool> terminated(acts.size(), false);
    for (std::size_t i = 0; i < acts.size(); ++i) {
      const ActivationDecision d = train_gate.evaluate(lc.probabilities(acts[i]));
      terminated[i] = d.terminate;
      if (d.terminate) ++stage.classified;
    }

    // Gain G_i (step 9): improvement on classified instances minus the extra
    // cost inflicted on instances passed through this stage.
    const double gamma_i =
        static_cast<double>(net.exit_ops(pos).total_compute());
    stage.gamma_base = gamma_base;
    stage.gamma_i = gamma_i;
    stage.gain = (gamma_base - gamma_i) * static_cast<double>(stage.classified) -
                 gamma_i * static_cast<double>(stage.reached - stage.classified);

    // Admission (step 10). The first candidate stage is always admitted; the
    // gain test applies from the second stage onwards.
    stage.admitted = !config.prune_by_gain || pos == 0 ||
                     stage.gain > config.epsilon_gain;

    if (tel != nullptr) {
      obs::AdmissionRecord rec;
      rec.stage = stage.stage_name;
      rec.prefix_layers = stage.prefix_layers;
      rec.gamma_base = gamma_base;
      rec.gamma_i = gamma_i;
      rec.reached = stage.reached;
      rec.classified = stage.classified;
      rec.gain = stage.gain;
      rec.epsilon = config.epsilon_gain;
      rec.train_delta = static_cast<double>(config.train_delta);
      rec.admitted = stage.admitted;
      tel->record_admission(rec);
    }

    if (stage.admitted) {
      // Only non-terminated instances flow to the next stage.
      std::vector<Tensor> next_acts;
      std::vector<std::size_t> next_labels;
      next_acts.reserve(acts.size());
      next_labels.reserve(acts.size());
      for (std::size_t i = 0; i < acts.size(); ++i) {
        if (!terminated[i]) {
          next_acts.push_back(std::move(acts[i]));
          next_labels.push_back(labels[i]);
        }
      }
      acts = std::move(next_acts);
      labels = std::move(next_labels);
      ++pos;
    } else {
      net.detach_classifier(pos);  // instances pass through unchanged
    }
    report.stages.push_back(std::move(stage));
  }

  report.fc_fraction =
      static_cast<double>(acts.size()) / static_cast<double>(train.size());
  if (tel != nullptr) tel->set_fc_fraction(report.fc_fraction);
  return report;
}

}  // namespace cdl
