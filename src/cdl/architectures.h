// The paper's two baseline DLN architectures (Tables I and II) and their
// CDL attach points, shared by tests, benches and examples.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/network.h"

namespace cdl {

struct CdlArchitecture {
  std::string name;
  Shape input_shape;
  /// Baseline layer-prefix lengths at which linear classifiers may attach
  /// (after each pooling stage, in network order). The paper's default CDLN
  /// uses `default_stages`; `candidate_stages` adds the deeper options used
  /// by the stage-count sweeps (Figs. 7 & 9).
  std::vector<std::size_t> default_stages;
  std::vector<std::size_t> candidate_stages;
  /// Builds an untrained baseline network.
  Network (*make_baseline)();
};

/// Table I: 28x28 -> C1 5x5x6 -> P1 2x2 -> C2 5x5x12 -> P2 2x2 -> FC 10,
/// with linear classifier O1 on the P1 features.
[[nodiscard]] Network make_mnist_2c_baseline();
[[nodiscard]] CdlArchitecture mnist_2c();

/// Table II: 28x28 -> C1 3x3x3 -> P1 2x2 -> C2 4x4x6 -> P2 2x2 -> C3 3x3x9
/// -> P3 (identity window) -> FC 10, with O1 on P1 and O2 on P2; O3 on P3 is
/// a candidate used by the stage sweeps.
[[nodiscard]] Network make_mnist_3c_baseline();
[[nodiscard]] CdlArchitecture mnist_3c();

/// All architectures evaluated by the paper, in table order.
[[nodiscard]] std::vector<CdlArchitecture> paper_architectures();

}  // namespace cdl
