// Runtime selection of the confidence threshold δ.
//
// The paper treats δ as a runtime knob "adjusted to achieve the best tradeoff
// between accuracy and efficiency" (Section V-E). select_delta automates
// that: it sweeps candidate thresholds on a held-out validation set and
// returns the most accurate one, breaking ties toward fewer operations.
#pragma once

#include <span>
#include <vector>

#include "cdl/conditional_network.h"
#include "data/dataset.h"

namespace cdl {

struct DeltaCandidate {
  float delta = 0.5F;
  double accuracy = 0.0;
  double avg_ops = 0.0;  ///< average operations per input at this delta
};

struct DeltaSelection {
  DeltaCandidate best;
  std::vector<DeltaCandidate> sweep;  ///< every evaluated candidate, in order
};

/// Default candidate grid covering the useful range of the paper's Fig. 10.
[[nodiscard]] std::vector<float> default_delta_grid();

/// Evaluates each candidate δ on `validation` and picks the most accurate
/// (ties -> lower average ops). Leaves the network's δ set to the winner.
[[nodiscard]] DeltaSelection select_delta(ConditionalNetwork& net,
                                          const Dataset& validation,
                                          std::span<const float> candidates);

/// Overload using default_delta_grid().
[[nodiscard]] DeltaSelection select_delta(ConditionalNetwork& net,
                                          const Dataset& validation);

struct StageDeltaSelection {
  std::vector<float> stage_deltas;  ///< chosen δ per stage, in stage order
  double accuracy = 0.0;
  double avg_ops = 0.0;
};

/// Extension beyond the paper: tunes an independent δ per stage by greedy
/// coordinate descent — starting from the best global δ, each stage's
/// threshold is swept in turn (deepest impact first: stage 0 onwards) and
/// the most accurate setting kept (ties -> fewer ops). Leaves the network
/// configured with the chosen per-stage overrides.
[[nodiscard]] StageDeltaSelection select_stage_deltas(
    ConditionalNetwork& net, const Dataset& validation,
    std::span<const float> candidates);

[[nodiscard]] StageDeltaSelection select_stage_deltas(ConditionalNetwork& net,
                                                      const Dataset& validation);

}  // namespace cdl
