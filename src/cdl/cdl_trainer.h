// Training entry points: baseline DLN backprop training and the paper's
// Algorithm 1 (stage-wise linear-classifier training with gain-based
// admission).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "cdl/conditional_network.h"
#include "data/dataset.h"
#include "nn/optimizer.h"

namespace cdl {

namespace obs {
class TrainTelemetry;
}

/// Thrown when a training loop hits a non-finite loss (the non-finite guard):
/// silent NaN propagation would poison every later epoch, so the trainer
/// aborts with a diagnostic naming the phase, epoch, step and — when one can
/// be identified — the first offending tensor. When telemetry is attached the
/// matching "non_finite" event has already been streamed before the throw.
class TrainingDiverged : public std::runtime_error {
 public:
  TrainingDiverged(const std::string& message, std::string phase_,
                   std::size_t epoch_, std::size_t step_)
      : std::runtime_error(message),
        phase(std::move(phase_)),
        epoch(epoch_),
        step(step_) {}

  std::string phase;      ///< "baseline" or "lc"
  std::size_t epoch = 0;  ///< 1-based epoch the abort happened in
  std::size_t step = 0;   ///< 1-based sample/step index within the epoch
};

struct BaselineTrainConfig {
  // Deliberately modest: the paper observes that a less-than-fully-trained
  // DLN still extracts features from which the stage classifiers recover
  // (and exceed) the baseline's accuracy — 6 epochs lands the baseline in
  // the paper's ~97.5 % regime.
  std::size_t epochs = 6;
  // Per-sample SGD: heavy momentum (>0.5) oscillates at this update
  // granularity, so the default is deliberately moderate.
  SgdConfig sgd{.learning_rate = 0.1F, .momentum = 0.5F, .lr_decay = 0.90F};
  /// Gradients are accumulated over this many samples per optimizer step
  /// (1 = pure online SGD, the paper-era default).
  std::size_t batch_size = 1;
  /// Print per-epoch loss every `log_every` epochs (0 = silent).
  std::size_t log_every = 0;
  /// Abort with TrainingDiverged (instead of silently training on NaNs) when
  /// a sample's loss is non-finite.
  bool abort_on_non_finite = true;
  /// Optional training-telemetry sink (not owned): receives per-epoch and
  /// per-batch records with gradient/weight/update statistics. Null costs
  /// one pointer test per step.
  obs::TrainTelemetry* telemetry = nullptr;
};

/// Trains `net` in place on softmax-cross-entropy with per-sample SGD.
/// Returns the final epoch's mean loss.
float train_baseline(Network& net, const Dataset& train,
                     const BaselineTrainConfig& config, Rng& rng);

struct CdlTrainConfig {
  std::size_t lc_epochs = 12;
  /// NLMS step size (relative to input energy); stable for values < 2.
  float lc_learning_rate = 0.8F;
  float lc_lr_decay = 0.90F;
  /// δ used while measuring stage gains during training (paper recommends
  /// 0.5-0.7 "to avoid misclassification errors").
  float train_delta = 0.6F;
  /// ε: minimum gain (in operation units, scaled by instance counts) a stage
  /// must contribute to be admitted.
  double epsilon_gain = 0.0;
  /// Apply the gain test (Algorithm 1 step 10). The first stage is always
  /// admitted — the paper's admission check runs "from the second CNN layer
  /// or stage onwards".
  bool prune_by_gain = true;
  /// Print per-LC-epoch loss every `log_every` epochs (0 = silent).
  std::size_t log_every = 0;
  /// Abort with TrainingDiverged when an LC epoch's mean loss is non-finite.
  bool abort_on_non_finite = true;
  /// Optional training-telemetry sink (not owned): receives LC training
  /// curves and the Algorithm-1 admission audit events.
  obs::TrainTelemetry* telemetry = nullptr;
};

struct StageTrainReport {
  std::string stage_name;
  std::size_t prefix_layers = 0;
  bool admitted = true;
  double gain = 0.0;             ///< G_i of Algorithm 1 step 9
  double gamma_base = 0.0;       ///< γ_base — full baseline cost (G_i input)
  double gamma_i = 0.0;          ///< γ_i — cumulative cost of exiting here
  std::size_t reached = 0;       ///< I_i — instances reaching the stage
  std::size_t classified = 0;    ///< Cl_i — instances terminating here
  float final_loss = 0.0F;       ///< mean LC loss, last epoch
};

struct CdlTrainReport {
  std::vector<StageTrainReport> stages;
  /// Fraction of training instances that reach the final FC stage.
  double fc_fraction = 0.0;
};

/// Algorithm 1: trains every classifier already attached to `net` (in stage
/// order) on the instances that reach its stage, then admits or removes each
/// by the gain criterion. The baseline must already be trained.
CdlTrainReport train_cdl(ConditionalNetwork& net, const Dataset& train,
                         const CdlTrainConfig& config, Rng& rng);

struct JointTrainConfig {
  std::size_t epochs = 6;
  SgdConfig sgd{.learning_rate = 0.1F, .momentum = 0.5F, .lr_decay = 0.90F};
  /// Normalized step size for the stage classifiers' own weights.
  float lc_learning_rate = 0.8F;
  /// Weight of each stage classifier's cross-entropy in the joint loss (the
  /// final FC loss has weight 1).
  float stage_loss_weight = 0.3F;
};

/// Extension beyond the paper (the direction BranchyNet later took): trains
/// the baseline and all attached stage classifiers *jointly* — each stage's
/// softmax-cross-entropy gradient is injected into the shared trunk at its
/// attach point, so the convolutional features are shaped by the early exits
/// as well as the final layer. Stage classifiers should use
/// LcTrainingRule::kSoftmaxXent so their confidences match how they were
/// trained. Returns the final epoch's mean joint loss.
float train_cdl_joint(ConditionalNetwork& net, const Dataset& train,
                      const JointTrainConfig& config, Rng& rng);

}  // namespace cdl
