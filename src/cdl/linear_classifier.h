// LinearClassifier: one CDL stage's output layer.
//
// A single linear map from flattened convolutional features to class scores.
// The paper trains these with the least-mean-square (Widrow-Hoff delta) rule;
// a softmax-cross-entropy rule is provided for the ablation bench. Class
// probabilities (the activation module's confidence input) are the softmax
// of the scores under either rule.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/tensor.h"
#include "nn/opcount.h"

namespace cdl {

class ThreadPool;

enum class LcTrainingRule { kLms, kSoftmaxXent };

[[nodiscard]] std::string to_string(LcTrainingRule rule);

class LinearClassifier {
 public:
  LinearClassifier(std::size_t in_features, std::size_t num_classes,
                   LcTrainingRule rule = LcTrainingRule::kLms);

  void init(Rng& rng);

  /// Raw scores W * flatten(features) + b.
  [[nodiscard]] Tensor scores(const Tensor& features) const;

  /// Per-class confidence vector the activation module consumes.
  ///
  /// For the LMS rule the targets are 0/1, so the raw scores already estimate
  /// per-class membership confidence: they are clamped to [0,1] and returned
  /// *without* normalization (the paper's "confidence value of the output").
  /// For the softmax-cross-entropy rule this is softmax(scores).
  [[nodiscard]] Tensor probabilities(const Tensor& features) const;

  // --- stage-resident batched scoring ---------------------------------------

  /// Scratch floats needed by scores_block / probabilities_block for `count`
  /// feature rows.
  [[nodiscard]] std::size_t block_scratch_floats(std::size_t count) const;

  /// Scores for `count` contiguous feature rows as one bias-initialized
  /// GEMM: out row i is bit-identical to scores(features_i) (the packed
  /// kernel reproduces the scalar "acc = bias; acc += w*x" chain exactly).
  /// `out` receives count * num_classes floats.
  void scores_block(const float* features, std::size_t count, float* out,
                    float* scratch, ThreadPool* pool) const;

  /// Batched probabilities(): scores_block + per-row clamp (LMS) or softmax.
  void probabilities_block(const float* features, std::size_t count,
                           float* out, float* scratch, ThreadPool* pool) const;

  /// One online update on (features, target). Returns the per-sample loss
  /// before the update (squared error for LMS, cross-entropy otherwise).
  float train_step(const Tensor& features, std::size_t target, float lr);

  /// Joint-training step (extension): softmax-cross-entropy on the scores
  /// regardless of the rule, updating this classifier's weights (normalized
  /// step, scaled by `loss_weight`) and returning d-loss/d-features — the
  /// gradient to inject into the shared trunk at this stage's boundary,
  /// already scaled by `loss_weight` and shaped like `features`.
  Tensor joint_train_step(const Tensor& features, std::size_t target, float lr,
                          float loss_weight);

  /// Cost of one inference: linear map + softmax.
  [[nodiscard]] OpCount forward_ops() const;

  /// Weight-norm statistics over W and b together, accumulated serially in
  /// element order in double precision (the training-telemetry determinism
  /// contract; LC epoch records carry these alongside the loss curve).
  struct WeightStats {
    double l2 = 0.0;
    double max_abs = 0.0;
  };
  [[nodiscard]] WeightStats weight_stats() const;

  [[nodiscard]] std::size_t in_features() const { return in_features_; }
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }
  [[nodiscard]] LcTrainingRule rule() const { return rule_; }

  /// Parameter tensors for (de)serialization: {weights, bias}.
  [[nodiscard]] std::vector<Tensor*> parameters() { return {&weights_, &bias_}; }

  [[nodiscard]] const Tensor& weights() const { return weights_; }
  [[nodiscard]] const Tensor& bias() const { return bias_; }

 private:
  void check_features(const Tensor& features) const;

  std::size_t in_features_;
  std::size_t num_classes_;
  LcTrainingRule rule_;
  Tensor weights_;  ///< (classes, features)
  Tensor bias_;     ///< (classes)
};

}  // namespace cdl
