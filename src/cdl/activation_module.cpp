#include "cdl/activation_module.h"

#include <algorithm>
#include <stdexcept>

#include "nn/softmax.h"

namespace cdl {

std::string to_string(ConfidencePolicy policy) {
  switch (policy) {
    case ConfidencePolicy::kMaxProbability:
      return "max_probability";
    case ConfidencePolicy::kMargin:
      return "margin";
    case ConfidencePolicy::kEntropy:
      return "entropy";
  }
  return "unknown";
}

ActivationModule::ActivationModule(float delta, ConfidencePolicy policy)
    : delta_(delta), policy_(policy) {
  set_delta(delta);
}

void ActivationModule::set_delta(float delta) {
  if (delta < 0.0F) {
    throw std::invalid_argument("ActivationModule: delta must be >= 0");
  }
  delta_ = delta;
}

ActivationDecision ActivationModule::evaluate(const Tensor& probabilities) const {
  return evaluate(probabilities.data(), probabilities.numel());
}

ActivationDecision ActivationModule::evaluate(const float* probabilities,
                                              std::size_t n) const {
  if (n == 0) {
    throw std::invalid_argument("ActivationModule: empty probabilities");
  }
  ActivationDecision decision;
  // Same argmax as Tensor::argmax (std::max_element: first max on ties).
  decision.label = static_cast<std::size_t>(
      std::max_element(probabilities, probabilities + n) - probabilities);

  switch (policy_) {
    case ConfidencePolicy::kMaxProbability: {
      // The paper's rule: terminate iff exactly one label clears δ, with
      // that label. (When it does, it is necessarily the argmax among finite
      // scores — but taking it directly keeps the decision in range even for
      // NaN-polluted inputs, where argmax may point at a NaN slot.)
      std::size_t above = 0;
      std::size_t above_idx = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (probabilities[i] >= delta_) {  // NaN compares false: never counted
          ++above;
          above_idx = i;
        }
      }
      decision.confidence = max_probability(probabilities, n);
      decision.terminate = (above == 1);
      if (decision.terminate) decision.label = above_idx;
      break;
    }
    case ConfidencePolicy::kMargin:
      decision.confidence = probability_margin(probabilities, n);
      decision.terminate = decision.confidence >= delta_;
      break;
    case ConfidencePolicy::kEntropy:
      decision.confidence = entropy_confidence(probabilities, n);
      decision.terminate = decision.confidence >= delta_;
      break;
  }
  return decision;
}

OpCount ActivationModule::decision_ops(std::size_t n) const {
  OpCount ops;
  switch (policy_) {
    case ConfidencePolicy::kMaxProbability:
      ops.compares = 2 * n;  // threshold comparisons + argmax scan
      break;
    case ConfidencePolicy::kMargin:
      ops.compares = 2 * n + 1;  // top-two scan + threshold
      ops.adds = 1;              // difference of top two
      break;
    case ConfidencePolicy::kEntropy:
      ops.activations = n;  // log evaluations
      ops.macs = n;         // p * log p accumulation
      ops.divides = 1;      // normalization by log n
      ops.compares = n + 1;
      break;
  }
  ops.mem_reads = n;
  return ops;
}

}  // namespace cdl
