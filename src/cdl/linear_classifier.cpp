#include "cdl/linear_classifier.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/workspace.h"
#include "nn/gemm.h"
#include "nn/softmax.h"

namespace cdl {

std::string to_string(LcTrainingRule rule) {
  switch (rule) {
    case LcTrainingRule::kLms:
      return "lms";
    case LcTrainingRule::kSoftmaxXent:
      return "softmax_xent";
  }
  return "unknown";
}

LinearClassifier::LinearClassifier(std::size_t in_features,
                                   std::size_t num_classes,
                                   LcTrainingRule rule)
    : in_features_(in_features),
      num_classes_(num_classes),
      rule_(rule),
      weights_(Shape{num_classes, in_features}),
      bias_(Shape{num_classes}) {
  if (in_features == 0 || num_classes == 0) {
    throw std::invalid_argument("LinearClassifier: sizes must be positive");
  }
}

void LinearClassifier::init(Rng& rng) {
  const float bound =
      std::sqrt(6.0F / static_cast<float>(in_features_)) * 0.5F;
  for (float& w : weights_.values()) w = rng.uniform(-bound, bound);
  bias_.zero();
}

void LinearClassifier::check_features(const Tensor& features) const {
  if (features.numel() != in_features_) {
    throw std::invalid_argument(
        "LinearClassifier: features " + features.shape().to_string() + " have " +
        std::to_string(features.numel()) + " elements, expected " +
        std::to_string(in_features_));
  }
}

Tensor LinearClassifier::scores(const Tensor& features) const {
  check_features(features);
  // Same packed micro-kernel as scores_block so per-image classify() and the
  // stage-major batched path agree bit-exactly (the wide kernel clone
  // contracts mul+add into FMAs; a scalar chain would round differently).
  thread_local std::vector<float> scratch;
  scratch.resize(block_scratch_floats(1));
  Tensor out(Shape{num_classes_});
  scores_block(features.data(), 1, out.data(), scratch.data(), nullptr);
  return out;
}

Tensor LinearClassifier::probabilities(const Tensor& features) const {
  if (rule_ == LcTrainingRule::kSoftmaxXent) return softmax(scores(features));
  Tensor conf = scores(features);
  for (float& v : conf.values()) v = std::clamp(v, 0.0F, 1.0F);
  return conf;
}

std::size_t LinearClassifier::block_scratch_floats(std::size_t count) const {
  return align_floats(gemm_packed_a_floats(count, in_features_)) +
         align_floats(gemm_packed_b_floats(in_features_, num_classes_));
}

void LinearClassifier::scores_block(const float* features, std::size_t count,
                                    float* out, float* scratch,
                                    ThreadPool* pool) const {
  float* pa = scratch;
  float* pb = pa + align_floats(gemm_packed_a_floats(count, in_features_));
  gemm_pack_a(count, in_features_, features, pa);
  gemm_pack_b_transposed(in_features_, num_classes_, weights_.data(), pb);
  sgemm_packed({count, in_features_, num_classes_}, pa, pb, out, bias_.data(),
               pool);
}

void LinearClassifier::probabilities_block(const float* features,
                                           std::size_t count, float* out,
                                           float* scratch,
                                           ThreadPool* pool) const {
  scores_block(features, count, out, scratch, pool);
  if (rule_ == LcTrainingRule::kSoftmaxXent) {
    for (std::size_t i = 0; i < count; ++i) {
      float* row = out + i * num_classes_;
      softmax_into(row, row, num_classes_);
    }
  } else {
    const std::size_t total = count * num_classes_;
    for (std::size_t i = 0; i < total; ++i) {
      out[i] = std::clamp(out[i], 0.0F, 1.0F);
    }
  }
}

LinearClassifier::WeightStats LinearClassifier::weight_stats() const {
  WeightStats stats;
  double sum = 0.0;
  for (const Tensor* t : {&weights_, &bias_}) {
    for (std::size_t i = 0; i < t->numel(); ++i) {
      const auto v = static_cast<double>((*t)[i]);
      sum += v * v;
      stats.max_abs = std::max(stats.max_abs, std::abs(v));
    }
  }
  stats.l2 = std::sqrt(sum);
  return stats;
}

float LinearClassifier::train_step(const Tensor& features, std::size_t target,
                                   float lr) {
  check_features(features);
  if (target >= num_classes_) {
    throw std::invalid_argument("LinearClassifier::train_step: bad target");
  }
  const Tensor y = scores(features);
  const float* x = features.data();

  float loss = 0.0F;
  Tensor error(Shape{num_classes_});  // signed update direction per class
  if (rule_ == LcTrainingRule::kLms) {
    for (std::size_t c = 0; c < num_classes_; ++c) {
      const float t = (c == target) ? 1.0F : 0.0F;
      error[c] = t - y[c];
      loss += error[c] * error[c];
    }
    loss /= static_cast<float>(num_classes_);
  } else {
    const Tensor p = softmax(y);
    loss = -std::log(std::max(p[target], 1e-12F));
    for (std::size_t c = 0; c < num_classes_; ++c) {
      const float t = (c == target) ? 1.0F : 0.0F;
      error[c] = t - p[c];
    }
  }

  // Normalized step (NLMS): dividing by the input energy keeps the update
  // inside the LMS stability bound regardless of the stage's feature
  // dimension — plain LMS diverges on the ~900-dim early-stage features.
  // The same normalization is applied to the cross-entropy ablation rule so
  // the two are compared at equal step schedules.
  float energy = 1.0F;
  for (std::size_t i = 0; i < in_features_; ++i) energy += x[i] * x[i];
  const float step_lr = lr / energy;

  for (std::size_t c = 0; c < num_classes_; ++c) {
    const float step = step_lr * error[c];
    if (step == 0.0F) continue;
    float* w_row = weights_.data() + c * in_features_;
    for (std::size_t i = 0; i < in_features_; ++i) w_row[i] += step * x[i];
    bias_[c] += step;
  }
  return loss;
}

Tensor LinearClassifier::joint_train_step(const Tensor& features,
                                          std::size_t target, float lr,
                                          float loss_weight) {
  check_features(features);
  if (target >= num_classes_) {
    throw std::invalid_argument("LinearClassifier::joint_train_step: bad target");
  }
  const Tensor p = softmax(scores(features));
  const float* x = features.data();

  // d-xent/d-score_c = p_c - onehot_c.
  Tensor grad_scores(Shape{num_classes_});
  for (std::size_t c = 0; c < num_classes_; ++c) {
    grad_scores[c] = p[c] - ((c == target) ? 1.0F : 0.0F);
  }

  // Gradient w.r.t. the features *before* the weight update, so the trunk
  // sees the same function the loss was computed on.
  Tensor grad_features(Shape{in_features_});
  for (std::size_t c = 0; c < num_classes_; ++c) {
    const float g = loss_weight * grad_scores[c];
    if (g == 0.0F) continue;
    const float* w_row = weights_.data() + c * in_features_;
    for (std::size_t i = 0; i < in_features_; ++i) {
      grad_features[i] += g * w_row[i];
    }
  }

  float energy = 1.0F;
  for (std::size_t i = 0; i < in_features_; ++i) energy += x[i] * x[i];
  const float step_lr = loss_weight * lr / energy;
  for (std::size_t c = 0; c < num_classes_; ++c) {
    const float step = -step_lr * grad_scores[c];
    if (step == 0.0F) continue;
    float* w_row = weights_.data() + c * in_features_;
    for (std::size_t i = 0; i < in_features_; ++i) w_row[i] += step * x[i];
    bias_[c] += step;
  }
  return grad_features.reshaped(features.shape());
}

OpCount LinearClassifier::forward_ops() const {
  OpCount ops;
  ops.macs = static_cast<std::uint64_t>(num_classes_) * in_features_;
  ops.adds = num_classes_;
  ops.mem_reads = 2 * ops.macs + num_classes_;
  ops.mem_writes = num_classes_;
  ops += softmax_ops(num_classes_);
  return ops;
}

}  // namespace cdl
