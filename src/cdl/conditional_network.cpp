#include "cdl/conditional_network.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "core/thread_pool.h"
#include "nn/serialize.h"
#include "nn/softmax.h"
#include "obs/energy_meter.h"
#include "obs/layer_profile.h"
#include "obs/trace.h"

namespace cdl {

namespace {

/// Surviving-row floor below which stage segments run serially even when a
/// pool is available. Late cascade stages often carry only a handful of
/// survivors per tile; dispatching those through parallel_for costs more in
/// fork/join barriers than the parallelism returns (the 0.94x regression
/// BENCH_throughput.json recorded), and results are bit-identical either way.
constexpr std::size_t kParallelMinRows = 32;

ThreadPool* gate_pool(ThreadPool* pool, std::size_t rows) {
  return rows < kParallelMinRows ? nullptr : pool;
}

}  // namespace

const char* to_string(StagePrecision p) {
  return p == StagePrecision::kInt8 ? "int8" : "fp32";
}

ConditionalNetwork::ConditionalNetwork(Network baseline, Shape input_shape)
    : baseline_(std::move(baseline)), input_shape_(std::move(input_shape)) {
  if (baseline_.size() == 0) {
    throw std::invalid_argument("ConditionalNetwork: empty baseline");
  }
  const Shape out = baseline_.output_shape(input_shape_);  // validates chain
  if (out.rank() != 1) {
    throw std::invalid_argument(
        "ConditionalNetwork: baseline must end in a rank-1 score vector, got " +
        out.to_string());
  }
  num_classes_ = out.numel();
  classes_shape_ = Shape{num_classes_};
  rebuild_ops_cache();
}

void BatchWorkspace::plan(const ConditionalNetwork& net, std::size_t tile,
                          std::size_t workers) {
  if (tile == 0) {
    throw std::invalid_argument("BatchWorkspace::plan: tile must be > 0");
  }
  if (workers == 0) workers = 1;
  const Network& base = net.baseline();
  net_ = &net;
  tile_ = tile;
  workers_ = workers;
  baseline_layers_ = base.size();
  prefixes_.clear();
  precision_.clear();
  stages_.clear();

  const std::size_t classes =
      base.output_shape(net.input_shape()).numel();
  std::size_t max_feat = net.input_shape().numel();
  WorkspacePlanner planner;
  std::size_t prev = 0;
  Shape prev_shape = net.input_shape();
  for (std::size_t i = 0; i < net.num_stages(); ++i) {
    const std::size_t prefix = net.stage_prefix(i);
    StageExec e;
    // The BlockPlan is built even for int8 stages: the batch loop reads its
    // shape metadata (out_floats) and an fp32 replan stays warm after a
    // precision flip back.
    e.seg = base.plan_block_range(prev_shape, prev, prefix, tile, workers);
    prev_shape = base.output_shape_after(net.input_shape(), prefix);
    max_feat = std::max(max_feat, prev_shape.numel());
    // The segment scratch and the classifier's pack scratch never coexist
    // (segment output lands in the feature ping-pong first), so they share
    // one frame slot sized for the larger of the two.
    const QuantizedSegment* qseg = net.quantized_segment(i);
    planner.begin_frame();
    e.scratch = planner.reserve(
        qseg != nullptr
            ? std::max(qseg->scratch_floats(tile),
                       net.quantized_classifier(i)->scratch_floats(tile))
            : std::max(e.seg.scratch_floats(),
                       net.classifier(i).block_scratch_floats(tile)));
    e.probs = planner.reserve(tile * classes);
    planner.end_frame();
    prefixes_.push_back(prefix);
    precision_.push_back(static_cast<std::uint8_t>(net.stage_precision(i)));
    stages_.push_back(std::move(e));
    prev = prefix;
  }
  final_.seg = base.plan_block_range(prev_shape, prev, base.size(), tile,
                                     workers);
  const QuantizedSegment* final_qseg = net.quantized_segment(net.num_stages());
  planner.begin_frame();
  final_.scratch = planner.reserve(final_qseg != nullptr
                                       ? final_qseg->scratch_floats(tile)
                                       : final_.seg.scratch_floats());
  final_.probs = planner.reserve(tile * classes);
  planner.end_frame();
  precision_.push_back(
      static_cast<std::uint8_t>(net.stage_precision(net.num_stages())));

  feat_[0] = planner.reserve_persistent(max_feat * tile);
  feat_[1] = planner.reserve_persistent(max_feat * tile);
  active_.resize(tile);
  arena_.allocate(planner);
}

std::size_t BatchWorkspace::auto_tile(std::size_t count, std::size_t workers) {
  if (workers <= 1) return kDefaultTile;
  // kDefaultTile rows per worker keeps every stage-level parallel_for busy
  // for far longer than its fork/join barrier; the cap bounds arena memory
  // and a tile never exceeds the batch itself.
  const std::size_t threaded = std::min<std::size_t>(kDefaultTile * workers, 512);
  return std::max(kDefaultTile, std::min(threaded, std::max<std::size_t>(count, 1)));
}

bool BatchWorkspace::matches(const ConditionalNetwork& net,
                             std::size_t workers) const {
  if (net_ != &net || tile_ == 0 || workers > workers_) return false;
  if (baseline_layers_ != net.baseline().size()) return false;
  if (prefixes_.size() != net.num_stages()) return false;
  for (std::size_t i = 0; i < prefixes_.size(); ++i) {
    if (prefixes_[i] != net.stage_prefix(i)) return false;
  }
  // Precision flips replan: int8 and fp32 stages size their scratch slots
  // differently.
  if (precision_.size() != net.num_stages() + 1) return false;
  for (std::size_t i = 0; i < precision_.size(); ++i) {
    if (precision_[i] != static_cast<std::uint8_t>(net.stage_precision(i))) {
      return false;
    }
  }
  return true;
}

std::size_t ConditionalNetwork::attach_classifier(std::size_t prefix_layers,
                                                  LcTrainingRule rule,
                                                  Rng& rng) {
  if (prefix_layers == 0 || prefix_layers >= baseline_.size()) {
    throw std::invalid_argument(
        "attach_classifier: prefix must be in [1, layers-1], got " +
        std::to_string(prefix_layers));
  }
  for (const Stage& s : stages_) {
    if (s.prefix_layers == prefix_layers) {
      throw std::invalid_argument("attach_classifier: stage at prefix " +
                                  std::to_string(prefix_layers) +
                                  " already exists");
    }
  }
  const Shape feat = baseline_.output_shape_after(input_shape_, prefix_layers);
  LinearClassifier lc(feat.numel(), num_classes_, rule);
  lc.init(rng);

  const auto pos = std::find_if(
      stages_.begin(), stages_.end(),
      [&](const Stage& s) { return s.prefix_layers > prefix_layers; });
  const auto inserted =
      stages_.insert(pos, Stage{prefix_layers, std::move(lc), std::nullopt});
  const auto stage_index = static_cast<std::size_t>(inserted - stages_.begin());
  reset_precision_state();  // stage boundaries moved under the compiled execs
  rebuild_ops_cache();
  return stage_index;
}

void ConditionalNetwork::detach_classifier(std::size_t stage) {
  check_stage(stage);
  stages_.erase(stages_.begin() + static_cast<std::ptrdiff_t>(stage));
  reset_precision_state();
  rebuild_ops_cache();
}

void ConditionalNetwork::reset_precision_state() {
  quant_execs_.clear();
  stage_precision_.clear();
}

std::pair<std::size_t, std::size_t> ConditionalNetwork::stage_segment(
    std::size_t stage) const {
  const std::size_t begin = stage == 0 ? 0 : stages_[stage - 1].prefix_layers;
  const std::size_t end = stage == stages_.size()
                              ? baseline_.size()
                              : stages_[stage].prefix_layers;
  return {begin, end};
}

ConditionalNetwork::QuantExec ConditionalNetwork::build_quant_exec(
    std::size_t stage) const {
  QuantExec exec;
  const auto [begin, end] = stage_segment(stage);
  const Shape in_shape =
      begin == 0 ? input_shape_
                 : baseline_.output_shape_after(input_shape_, begin);
  exec.seg = QuantizedSegment::build(baseline_, in_shape, begin, end, quant_cal_);
  if (exec.seg == nullptr) return exec;
  if (stage < stages_.size()) {
    exec.classifier = QuantizedClassifier::build(
        stages_[stage].classifier, quant_cal_.amax[end], quant_cal_.vmin[end]);
    if (exec.classifier == nullptr) exec.seg.reset();
  }
  return exec;
}

void ConditionalNetwork::set_quantization(QuantCalibration cal) {
  if (cal.vmin.size() != cal.amax.size()) {
    throw std::invalid_argument(
        "set_quantization: amax/vmin length mismatch");
  }
  if (!cal.empty() && cal.boundaries() != baseline_.size() + 1) {
    throw std::invalid_argument(
        "set_quantization: calibration has " +
        std::to_string(cal.boundaries()) + " boundaries, baseline needs " +
        std::to_string(baseline_.size() + 1));
  }
  quant_cal_ = std::move(cal);
  reset_precision_state();
}

void ConditionalNetwork::set_stage_precision(std::size_t stage,
                                             StagePrecision precision) {
  if (stage > stages_.size()) {
    throw std::out_of_range("set_stage_precision: stage " +
                            std::to_string(stage) + " of " +
                            std::to_string(stages_.size() + 1));
  }
  stage_precision_.resize(stages_.size() + 1, StagePrecision::kFp32);
  quant_execs_.resize(stages_.size() + 1);
  if (precision == StagePrecision::kInt8) {
    if (quant_cal_.empty()) {
      throw std::logic_error(
          "set_stage_precision: no calibration installed; call "
          "set_quantization first");
    }
    QuantExec exec = build_quant_exec(stage);
    if (exec.seg == nullptr) {
      throw std::invalid_argument("set_stage_precision: stage " +
                                  stage_name(stage) + " is not quantizable");
    }
    quant_execs_[stage] = std::move(exec);
  } else {
    quant_execs_[stage] = QuantExec{};
  }
  stage_precision_[stage] = precision;
}

StagePrecision ConditionalNetwork::stage_precision(std::size_t stage) const {
  if (stage > stages_.size()) {
    throw std::out_of_range("stage_precision: stage " + std::to_string(stage) +
                            " of " + std::to_string(stages_.size() + 1));
  }
  return stage < stage_precision_.size() ? stage_precision_[stage]
                                         : StagePrecision::kFp32;
}

bool ConditionalNetwork::stage_quantizable(std::size_t stage) const {
  if (stage > stages_.size() || quant_cal_.empty()) return false;
  return build_quant_exec(stage).seg != nullptr;
}

void ConditionalNetwork::set_cascade_precision(StagePrecision precision) {
  for (std::size_t s = 0; s <= stages_.size(); ++s) {
    set_stage_precision(s, precision);
  }
}

const QuantizedSegment* ConditionalNetwork::quantized_segment(
    std::size_t stage) const {
  return stage < quant_execs_.size() ? quant_execs_[stage].seg.get() : nullptr;
}

const QuantizedClassifier* ConditionalNetwork::quantized_classifier(
    std::size_t stage) const {
  return stage < quant_execs_.size() ? quant_execs_[stage].classifier.get()
                                     : nullptr;
}

void ConditionalNetwork::check_stage(std::size_t stage) const {
  if (stage >= stages_.size()) {
    throw std::out_of_range("ConditionalNetwork: stage " +
                            std::to_string(stage) + " of " +
                            std::to_string(stages_.size()));
  }
}

LinearClassifier& ConditionalNetwork::classifier(std::size_t stage) {
  check_stage(stage);
  return stages_[stage].classifier;
}

const LinearClassifier& ConditionalNetwork::classifier(std::size_t stage) const {
  check_stage(stage);
  return stages_[stage].classifier;
}

std::size_t ConditionalNetwork::stage_prefix(std::size_t stage) const {
  check_stage(stage);
  return stages_[stage].prefix_layers;
}

std::string ConditionalNetwork::stage_name(std::size_t stage) const {
  if (stage == stages_.size()) return "FC";
  check_stage(stage);
  std::string name = std::to_string(stage + 1);
  name.insert(name.begin(), 'O');
  return name;
}

void ConditionalNetwork::set_delta(float delta) {
  activation_.set_delta(delta);
  for (Stage& s : stages_) s.delta_override.reset();
}

void ConditionalNetwork::set_policy(ConfidencePolicy policy) {
  activation_ = ActivationModule(activation_.delta(), policy);
  rebuild_ops_cache();  // decision ops depend on the policy
}

void ConditionalNetwork::set_stage_delta(std::size_t stage, float delta) {
  check_stage(stage);
  if (delta < 0.0F) {
    throw std::invalid_argument("set_stage_delta: delta must be >= 0");
  }
  stages_[stage].delta_override = delta;
}

float ConditionalNetwork::stage_delta(std::size_t stage) const {
  check_stage(stage);
  return stages_[stage].delta_override.value_or(activation_.delta());
}

ClassificationResult ConditionalNetwork::classify(const Tensor& input) const {
  if (input.shape() != input_shape_) {
    throw std::invalid_argument("classify: input shape " +
                                input.shape().to_string() + " != " +
                                input_shape_.to_string());
  }
  CDL_TRACE_SPAN(classify_span, "classify", -1);
  const bool profiling = obs::LayerProfiler::enabled();
  ClassificationResult result;
  Tensor x = input;
  std::size_t done_layers = 0;
  // Single-image scratch for int8 stages; thread_local keeps classify()
  // safe to call concurrently (resize is a no-op once warm).
  thread_local std::vector<float> qscratch;

  for (std::size_t s = 0; s < stages_.size(); ++s) {
    CDL_TRACE_SPAN(stage_span, "stage", static_cast<std::int32_t>(s));
    const obs::LayerProfiler::StageScope prof_scope(
        static_cast<std::int32_t>(s));
    const Stage& stage = stages_[s];
    const QuantizedSegment* qseg = quantized_segment(s);
    const QuantizedClassifier* qlc = quantized_classifier(s);
    if (qseg != nullptr) {
      qscratch.resize(
          std::max(qseg->scratch_floats(1), qlc->scratch_floats(1)));
      Tensor out(baseline_.output_shape_after(input_shape_, stage.prefix_layers));
      qseg->infer_block(x.data(), out.data(), 1, qscratch.data(), nullptr);
      x = std::move(out);
    } else {
      x = baseline_.infer_range(x, done_layers, stage.prefix_layers);
    }
    done_layers = stage.prefix_layers;
    result.ops += stage_ops(s);

    const std::uint64_t prof_t0 = profiling ? obs::now_ns() : 0;
    Tensor probs;
    if (qlc != nullptr) {
      probs.resize(classes_shape_);
      qlc->probabilities_block(x.data(), 1, probs.data(), qscratch.data(),
                               nullptr);
    } else {
      probs = stage.classifier.probabilities(x);
    }
    const ActivationModule gate(stage.delta_override.value_or(activation_.delta()),
                                activation_.policy());
    const ActivationDecision decision = gate.evaluate(probs);
    if (profiling) {
      OpCount gate_ops = stage.classifier.forward_ops();
      gate_ops += activation_.decision_ops(num_classes_);
      obs::LayerProfiler::instance().record(
          static_cast<std::int32_t>(s), obs::kStageLevel,
          qlc != nullptr ? "classifier+gate[int8]" : "classifier+gate", 1, 1,
          gate_ops, obs::now_ns() - prof_t0);
    }
    if (decision.terminate) {
      result.label = decision.label;
      result.exit_stage = s;
      result.confidence = decision.confidence;
      result.probabilities = probs;
      CDL_TRACE_INSTANT("exit", static_cast<std::int32_t>(s));
      return result;
    }
  }

  // Hardest path: run the remaining baseline layers and take the FC output.
  CDL_TRACE_SPAN(fc_span, "stage", static_cast<std::int32_t>(stages_.size()));
  const obs::LayerProfiler::StageScope prof_scope(
      static_cast<std::int32_t>(stages_.size()));
  const QuantizedSegment* final_qseg = quantized_segment(stages_.size());
  if (final_qseg != nullptr) {
    qscratch.resize(final_qseg->scratch_floats(1));
    Tensor out(classes_shape_);
    final_qseg->infer_block(x.data(), out.data(), 1, qscratch.data(), nullptr);
    x = std::move(out);
  } else {
    x = baseline_.infer_range(x, done_layers, baseline_.size());
  }
  result.ops += final_stage_ops();
  const std::uint64_t prof_t0 = profiling ? obs::now_ns() : 0;
  const Tensor probs = softmax(x);
  result.label = probs.argmax();
  result.exit_stage = stages_.size();
  result.confidence = max_probability(probs);
  result.probabilities = probs;
  if (profiling) {
    OpCount fc_ops = softmax_ops(num_classes_);
    fc_ops.compares += num_classes_ - 1;  // argmax scan
    obs::LayerProfiler::instance().record(
        static_cast<std::int32_t>(stages_.size()), obs::kStageLevel,
        "softmax+argmax", 1, 1, fc_ops, obs::now_ns() - prof_t0);
  }
  CDL_TRACE_INSTANT("exit", static_cast<std::int32_t>(stages_.size()));
  return result;
}

ClassificationResult ConditionalNetwork::classify_baseline(
    const Tensor& input) const {
  const bool profiling = obs::LayerProfiler::enabled();
  ClassificationResult result;
  const Tensor logits = baseline_.infer(input);
  const std::uint64_t prof_t0 = profiling ? obs::now_ns() : 0;
  const Tensor probs = softmax(logits);
  if (profiling) {
    // classify_baseline's accounting adds softmax only (no argmax compares),
    // so the attribution row mirrors that to keep the sums exact.
    obs::LayerProfiler::instance().record(
        obs::kNoStage, obs::kStageLevel, "softmax", 1, 1,
        softmax_ops(num_classes_), obs::now_ns() - prof_t0);
  }
  result.label = probs.argmax();
  result.exit_stage = stages_.size();
  result.confidence = max_probability(probs);
  result.probabilities = probs;
  result.ops = baseline_forward_ops();
  result.ops += softmax_ops(num_classes_);
  return result;
}

std::vector<ClassificationResult> ConditionalNetwork::classify_batch(
    const std::vector<Tensor>& inputs, ThreadPool* pool) const {
  CDL_TRACE_SPAN(batch_span, "classify_batch",
                 static_cast<std::int32_t>(inputs.size()));
  std::vector<ClassificationResult> results;
  BatchWorkspace ws;
  classify_batch_into(inputs, results, ws, pool);
  return results;
}

void ConditionalNetwork::store_probabilities(Tensor& dst,
                                             const float* row) const {
  if (dst.shape() != classes_shape_) dst.resize(Shape{num_classes_});
  std::memcpy(dst.data(), row, num_classes_ * sizeof(float));
}

void ConditionalNetwork::classify_batch_into(
    const std::vector<Tensor>& inputs,
    std::vector<ClassificationResult>& results, BatchWorkspace& ws,
    ThreadPool* pool) const {
  for (const Tensor& t : inputs) {
    if (t.shape() != input_shape_) {
      throw std::invalid_argument("classify_batch_into: input shape " +
                                  t.shape().to_string() + " != " +
                                  input_shape_.to_string());
    }
  }
  const std::size_t workers = pool != nullptr ? pool->size() : 1;
  if (!ws.matches(*this, workers)) {
    ws.plan(*this, BatchWorkspace::auto_tile(inputs.size(), workers), workers);
  }
  results.resize(inputs.size());
  if (inputs.empty()) return;
  CDL_TRACE_SPAN(batch_span, "classify_batch_staged",
                 static_cast<std::int32_t>(inputs.size()));

  const bool profiling = obs::LayerProfiler::enabled();
  const std::size_t tile = ws.tile_;
  const std::size_t in_floats = input_shape_.numel();
  float* const feat[2] = {ws.arena_.data(ws.feat_[0]),
                          ws.arena_.data(ws.feat_[1])};

  for (std::size_t t0 = 0; t0 < inputs.size(); t0 += tile) {
    const std::size_t n = std::min(tile, inputs.size() - t0);
    float* cur = feat[0];
    std::size_t cur_buf = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::memcpy(cur + i * in_floats, inputs[t0 + i].data(),
                  in_floats * sizeof(float));
      ws.active_[i] = static_cast<std::uint32_t>(t0 + i);
    }
    std::size_t live = n;

    for (std::size_t s = 0; s < stages_.size() && live > 0; ++s) {
      CDL_TRACE_SPAN(stage_span, "batch_stage", static_cast<std::int32_t>(s));
      const obs::LayerProfiler::StageScope prof_scope(
          static_cast<std::int32_t>(s));
      const BatchWorkspace::StageExec& ex = ws.stages_[s];
      ThreadPool* const seg_pool = gate_pool(pool, live);
      float* nxt = feat[1 - cur_buf];
      float* scratch = ws.arena_.data(ex.scratch);
      const QuantizedSegment* qseg = quantized_segment(s);
      if (qseg != nullptr) {
        qseg->infer_block(cur, nxt, live, scratch, seg_pool);
      } else {
        baseline_.infer_block_range(ex.seg, cur, nxt, live, scratch, seg_pool);
      }
      cur_buf = 1 - cur_buf;
      cur = nxt;
      const std::size_t feat_floats = ex.seg.out_floats;
      const std::size_t entering = live;
      const std::uint64_t prof_t0 = profiling ? obs::now_ns() : 0;

      float* probs = ws.arena_.data(ex.probs);
      const QuantizedClassifier* qlc = quantized_classifier(s);
      if (qlc != nullptr) {
        qlc->probabilities_block(cur, live, probs, scratch, seg_pool);
      } else {
        stages_[s].classifier.probabilities_block(cur, live, probs, scratch,
                                                  seg_pool);
      }

      const ActivationModule gate(
          stages_[s].delta_override.value_or(activation_.delta()),
          activation_.policy());
      // Per-row decisions in original order; exited rows scatter results to
      // their original batch index, survivors compact downward in place
      // (dst <= src, so row-by-row copies never overlap a pending row).
      std::size_t kept = 0;
      for (std::size_t r = 0; r < live; ++r) {
        const float* row = probs + r * num_classes_;
        const ActivationDecision decision = gate.evaluate(row, num_classes_);
        if (decision.terminate) {
          ClassificationResult& res = results[ws.active_[r]];
          res.label = decision.label;
          res.exit_stage = s;
          res.confidence = decision.confidence;
          res.ops = exit_ops(s);
          store_probabilities(res.probabilities, row);
        } else {
          if (kept != r) {
            std::memcpy(cur + kept * feat_floats, cur + r * feat_floats,
                        feat_floats * sizeof(float));
            ws.active_[kept] = ws.active_[r];
          }
          ++kept;
        }
      }
      live = kept;
      if (profiling) {
        OpCount gate_ops = stages_[s].classifier.forward_ops();
        gate_ops += activation_.decision_ops(num_classes_);
        obs::LayerProfiler::instance().record(
            static_cast<std::int32_t>(s), obs::kStageLevel,
            qlc != nullptr ? "classifier+gate[int8]" : "classifier+gate", 1,
            entering, gate_ops * entering, obs::now_ns() - prof_t0);
      }
      CDL_TRACE_INSTANT("batch_survivors", static_cast<std::int32_t>(live));
    }

    if (live == 0) continue;
    // FC fallthrough for rows no stage resolved.
    CDL_TRACE_SPAN(fc_span, "batch_stage",
                   static_cast<std::int32_t>(stages_.size()));
    const obs::LayerProfiler::StageScope prof_scope(
        static_cast<std::int32_t>(stages_.size()));
    const BatchWorkspace::StageExec& ex = ws.final_;
    float* logits = ws.arena_.data(ex.probs);
    const QuantizedSegment* final_qseg = quantized_segment(stages_.size());
    if (final_qseg != nullptr) {
      final_qseg->infer_block(cur, logits, live, ws.arena_.data(ex.scratch),
                              gate_pool(pool, live));
    } else {
      baseline_.infer_block_range(ex.seg, cur, logits, live,
                                  ws.arena_.data(ex.scratch),
                                  gate_pool(pool, live));
    }
    const std::uint64_t prof_t0 = profiling ? obs::now_ns() : 0;
    for (std::size_t r = 0; r < live; ++r) {
      float* row = logits + r * num_classes_;
      softmax_into(row, row, num_classes_);
      ClassificationResult& res = results[ws.active_[r]];
      res.label = static_cast<std::size_t>(
          std::max_element(row, row + num_classes_) - row);
      res.exit_stage = stages_.size();
      res.confidence = max_probability(row, num_classes_);
      res.ops = exit_ops(stages_.size());
      store_probabilities(res.probabilities, row);
    }
    if (profiling) {
      OpCount fc_ops = softmax_ops(num_classes_);
      fc_ops.compares += num_classes_ - 1;  // argmax scan
      obs::LayerProfiler::instance().record(
          static_cast<std::int32_t>(stages_.size()), obs::kStageLevel,
          "softmax+argmax", 1, live, fc_ops * live, obs::now_ns() - prof_t0);
    }
  }
}

Tensor ConditionalNetwork::stage_features(const Tensor& input,
                                          std::size_t stage) const {
  check_stage(stage);
  return baseline_.infer_range(input, 0, stages_[stage].prefix_layers);
}

OpCount ConditionalNetwork::segment_ops(std::size_t from_layer,
                                        std::size_t to_layer) const {
  const std::vector<OpCount> per_layer = baseline_.layer_ops(input_shape_);
  OpCount total;
  for (std::size_t i = from_layer; i < to_layer; ++i) total += per_layer[i];
  return total;
}

OpCount ConditionalNetwork::baseline_forward_ops() const {
  return baseline_.forward_ops(input_shape_);
}

OpCount ConditionalNetwork::stage_ops(std::size_t stage) const {
  check_stage(stage);
  return stage_ops_cache_[stage];
}

OpCount ConditionalNetwork::final_stage_ops() const {
  return final_stage_ops_cache_;
}

void ConditionalNetwork::rebuild_ops_cache() {
  stage_ops_cache_.clear();
  stage_ops_cache_.reserve(stages_.size());
  for (std::size_t stage = 0; stage < stages_.size(); ++stage) {
    const std::size_t prev =
        stage == 0 ? 0 : stages_[stage - 1].prefix_layers;
    OpCount ops = segment_ops(prev, stages_[stage].prefix_layers);
    ops += stages_[stage].classifier.forward_ops();
    ops += activation_.decision_ops(num_classes_);
    stage_ops_cache_.push_back(ops);
  }
  const std::size_t prev = stages_.empty() ? 0 : stages_.back().prefix_layers;
  OpCount ops = segment_ops(prev, baseline_.size());
  ops += softmax_ops(num_classes_);
  OpCount argmax_scan;
  argmax_scan.compares = num_classes_ - 1;
  ops += argmax_scan;
  final_stage_ops_cache_ = ops;
}

OpCount ConditionalNetwork::worst_case_ops() const {
  return exit_ops(stages_.size());
}

OpCount ConditionalNetwork::exit_ops(std::size_t stage) const {
  if (stage > stages_.size()) {
    throw std::out_of_range("exit_ops: stage " + std::to_string(stage));
  }
  OpCount ops;
  for (std::size_t s = 0; s < std::min(stage + 1, stages_.size()); ++s) {
    ops += stage_ops(s);
  }
  if (stage == stages_.size()) ops += final_stage_ops();
  return ops;
}

std::vector<double> ConditionalNetwork::exit_energy_table(
    const obs::EnergyMeter& meter) const {
  std::vector<obs::PrecisionOps> mix;
  mix.reserve(stages_.size() + 1);
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    obs::PrecisionOps po;
    if (stage_precision(s) == StagePrecision::kInt8) {
      po.int8 = stage_ops(s);
    } else {
      po.fp32 = stage_ops(s);
    }
    mix.push_back(po);
  }
  // Final stage: a quantized final segment runs int8, but softmax+argmax is
  // always evaluated in fp32 — the same precision split the profiler rows
  // carry, so live attribution and this table agree bit-exactly.
  obs::PrecisionOps fin;
  if (stage_precision(stages_.size()) == StagePrecision::kInt8) {
    OpCount fc = softmax_ops(num_classes_);
    fc.compares += num_classes_ - 1;  // argmax scan
    const std::size_t prev = stages_.empty() ? 0 : stages_.back().prefix_layers;
    fin.int8 = segment_ops(prev, baseline_.size());
    fin.fp32 = fc;
  } else {
    fin.fp32 = final_stage_ops();
  }
  mix.push_back(fin);
  return meter.exit_energy_table(mix);
}

std::vector<Tensor*> ConditionalNetwork::all_parameters() {
  std::vector<Tensor*> params = baseline_.parameters();
  for (Stage& s : stages_) {
    for (Tensor* p : s.classifier.parameters()) params.push_back(p);
  }
  return params;
}

void ConditionalNetwork::save(const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("ConditionalNetwork::save: cannot open " + path);
  save_parameters(os, all_parameters());
}

void ConditionalNetwork::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("ConditionalNetwork::load: cannot open " + path);
  load_parameters(is, all_parameters());
  reset_precision_state();  // packed int8 parameters derive from the weights
}

}  // namespace cdl
