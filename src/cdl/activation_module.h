// ActivationModule: the paper's per-stage terminate-or-continue decision.
//
// Given the stage's class-probability vector, the module terminates the
// cascade iff the probabilities express *sufficient confidence in exactly one
// label* (Section II of the paper):
//   - no class reaching the threshold  -> pass to the next stage;
//   - two or more classes reaching it  -> ambiguous, pass on;
//   - exactly one class reaching it    -> terminate with that label.
//
// The threshold δ is the user-facing runtime knob traded between efficiency
// and accuracy (paper Fig. 10). Margin and entropy confidence policies are
// provided for the confidence-policy ablation bench.
#pragma once

#include <string>

#include "core/tensor.h"
#include "nn/opcount.h"

namespace cdl {

enum class ConfidencePolicy { kMaxProbability, kMargin, kEntropy };

[[nodiscard]] std::string to_string(ConfidencePolicy policy);

struct ActivationDecision {
  bool terminate = false;
  std::size_t label = 0;     ///< argmax label (meaningful when terminating)
  float confidence = 0.0F;   ///< policy-specific confidence value
};

class ActivationModule {
 public:
  explicit ActivationModule(float delta = 0.5F,
                            ConfidencePolicy policy = ConfidencePolicy::kMaxProbability);

  [[nodiscard]] ActivationDecision evaluate(const Tensor& probabilities) const;

  /// Span form used by the batched path: identical decision logic over `n`
  /// probabilities starting at `probabilities` (no Tensor construction, so
  /// the steady-state batch loop stays allocation-free).
  [[nodiscard]] ActivationDecision evaluate(const float* probabilities,
                                            std::size_t n) const;

  /// Cost of one decision over `n` class probabilities.
  [[nodiscard]] OpCount decision_ops(std::size_t n) const;

  [[nodiscard]] float delta() const { return delta_; }
  void set_delta(float delta);

  [[nodiscard]] ConfidencePolicy policy() const { return policy_; }

 private:
  float delta_;
  ConfidencePolicy policy_;
};

}  // namespace cdl
