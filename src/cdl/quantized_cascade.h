// INT8 execution of cascade stage segments: calibration, quantized fused
// conv->act->pool / dense segments, and quantized stage classifiers.
//
// Quantization scheme (see nn/quantize.h and nn/qgemm.h): activations are
// unsigned 8-bit with zero point 0 and per-boundary scale amax/255 — valid
// for the paper's architectures because every quantized boundary carries
// sigmoid outputs or nonnegative input pixels (the calibrator records the
// observed minimum so this is *checked*, not assumed). Weights are signed
// 8-bit per output channel, bounded to +/-kQgemmWeightMax. The integer GEMM
// runs SIMD; small-c_in first-layer convs skip the im2col entirely via the
// direct nn/qconv_direct kernel (integer-exact, so GEMM and direct routes
// agree bit for bit); (re)quantization uses quantize_activations_u8 and the
// dequantize + activation epilogue runs the nn/act_kernels plane kernels —
// both with vector lanes bit-identical to their scalar rules. The remaining
// float math (classifier scores) is scalar with one fixed rounding per
// element. Int8 results are therefore bit-identical across batch size, tile
// size, thread count and kernel dispatch tier.
//
// Exit semantics are unchanged: segments emit fp32 features, classifiers
// emit fp32 probabilities, and the activation module's delta decision runs
// on those dequantized values exactly as in the fp32 cascade.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cdl/linear_classifier.h"
#include "core/shape.h"
#include "nn/activations.h"
#include "nn/network.h"

namespace cdl {

class ThreadPool;

/// Per-boundary activation ranges from a calibration split. Boundary b is
/// the input of baseline layer b; boundary size() - 1 (== layer count) is
/// the final output. amax drives the u8 scale; vmin guards the zero-point-0
/// assumption (a boundary with vmin < 0 is not quantizable).
struct QuantCalibration {
  std::vector<float> amax;
  std::vector<float> vmin;

  [[nodiscard]] bool empty() const { return amax.empty(); }
  [[nodiscard]] std::size_t boundaries() const { return amax.size(); }
};

/// Runs the first `n` images (all when n >= images.size()) through the
/// baseline layer by layer, recording per-boundary max / min. Per-worker
/// accumulators merge by max/min — order-independent — so the result is
/// identical for any `pool` size. Throws if no image matches `input_shape`.
[[nodiscard]] QuantCalibration collect_quant_calibration(
    const Network& baseline, const Shape& input_shape,
    const std::vector<Tensor>& images, std::size_t n,
    ThreadPool* pool = nullptr);

/// A contiguous run of baseline layers compiled to int8: the same fused
/// conv->monotone-act->max-pool triples as the fp32 block executor (conv as
/// byte-im2col + u8 x s8 GEMM, pooling on the s32 accumulators — exact,
/// since the per-channel dequant slope is positive — then scalar
/// dequantize + activation + requantize), optionally ending with one dense
/// layer. build() returns nullptr when the range does not fit this shape
/// (non-fused steps, padding, average pooling, negative boundary minima):
/// such segments stay fp32.
class QuantizedSegment {
 public:
  [[nodiscard]] static std::unique_ptr<QuantizedSegment> build(
      const Network& net, const Shape& in_shape, std::size_t begin,
      std::size_t end, const QuantCalibration& cal);

  /// Scratch floats infer_block needs for `count` samples (holds the u8
  /// ping/pong buffers, the packed-B panels and the s32 accumulators,
  /// carved from the caller's float arena).
  [[nodiscard]] std::size_t scratch_floats(std::size_t count) const;

  /// fp32 in -> fp32 out over `count` contiguous sample-major samples.
  /// Bit-identical for any (count, pool) and any qgemm dispatch tier;
  /// performs no heap allocation. Records one attribution-profiler row per
  /// step, named "<fused name>[int8]".
  void infer_block(const float* in, float* out, std::size_t count,
                   float* scratch, ThreadPool* pool) const;

  [[nodiscard]] std::size_t in_floats() const { return in_floats_; }
  [[nodiscard]] std::size_t out_floats() const { return out_floats_; }
  [[nodiscard]] std::size_t begin() const { return begin_; }
  [[nodiscard]] std::size_t end() const { return end_; }

 private:
  struct Step {
    enum class Kind : std::uint8_t { kConvTriple, kDense };
    /// Activation identity resolved at build time so the dequantize loop can
    /// inline the math instead of paying a virtual call per element. The
    /// inlined expressions are the exact ones the activation classes use, so
    /// results are unchanged; kGeneric falls back to the virtual call.
    enum class Act : std::uint8_t { kGeneric, kSigmoid, kTanh, kRelu };
    Kind kind = Kind::kConvTriple;
    Act act_kind = Act::kGeneric;
    std::size_t first = 0;  ///< index of the step's first baseline layer
    std::size_t span = 1;
    std::string name;       ///< profiler row name (fp32 step name + [int8])
    OpCount op_count;       ///< per-sample modeled cost (fp32 plan's value)
    std::uint64_t ops = 0;  ///< total_compute of op_count
    // Conv-triple geometry (unused for dense).
    std::size_t in_c = 0, in_h = 0, in_w = 0, kernel = 0;
    std::size_t conv_oh = 0, conv_ow = 0, pool_window = 1;
    std::size_t out_h = 0, out_w = 0;
    const ElementwiseActivation* act = nullptr;
    // Dense geometry.
    std::size_t in_features = 0;
    std::size_t out_c = 0;  ///< conv output maps / dense output features
    std::size_t in_numel = 0, out_numel = 0;  ///< per-sample extents
    // Quantized parameters.
    std::vector<std::int8_t> packed_w;  ///< qgemm packed-A weight panels
    std::vector<std::int8_t> raw_w;     ///< unpacked (out_c, k) s8 weights
    /// True when the conv runs nn/qconv_direct instead of im2col + GEMM
    /// (small c_in, ow >= 8). Both routes are integer-exact, so this is a
    /// pure performance switch.
    bool direct = false;
    std::vector<float> mult;            ///< per-channel in_scale * w_scale
    std::vector<float> bias;
    float in_inv_scale = 1.0F;   ///< fp32 -> u8 for this step's input
    float out_inv_scale = 0.0F;  ///< u8 requant scale; 0 = fp32 output
  };

  void run_conv_triple(const Step& step, const std::uint8_t* in_u8,
                       std::uint8_t* out_u8, float* out_f32,
                       std::size_t count, std::uint8_t* pb,
                       std::int32_t* raw, std::int32_t* pooled, float* stage,
                       ThreadPool* pool) const;
  void run_dense(const Step& step, const std::uint8_t* in_u8, float* out_f32,
                 std::size_t count, std::uint8_t* pb, std::int32_t* raw,
                 ThreadPool* pool) const;

  std::vector<Step> steps_;
  std::size_t begin_ = 0, end_ = 0;
  std::size_t in_floats_ = 0, out_floats_ = 0;
  std::size_t max_u8_floats_ = 0;    ///< one u8 ping buffer, in floats
  std::size_t max_pb_floats_ = 0;    ///< packed-B panels, in floats
  std::size_t max_raw_floats_ = 0;   ///< s32 GEMM output, in floats
  std::size_t max_pool_floats_ = 0;  ///< s32 pooled output, in floats
};

/// A stage classifier compiled to int8: features quantize with the stage
/// boundary's scale, scores come from one u8 x s8 GEMM, and the per-class
/// dequantized scores go through the same clamp (LMS) or softmax rule as
/// the fp32 classifier. build() returns nullptr when the boundary is not
/// quantizable (vmin < 0 or degenerate amax).
class QuantizedClassifier {
 public:
  [[nodiscard]] static std::unique_ptr<QuantizedClassifier> build(
      const LinearClassifier& lc, float feat_amax, float feat_vmin);

  [[nodiscard]] std::size_t scratch_floats(std::size_t count) const;

  /// Batched probabilities for `count` contiguous feature rows; `out`
  /// receives count * num_classes floats. No heap allocation.
  void probabilities_block(const float* features, std::size_t count,
                           float* out, float* scratch,
                           ThreadPool* pool) const;

  [[nodiscard]] std::size_t num_classes() const { return classes_; }

 private:
  std::size_t in_features_ = 0;
  std::size_t classes_ = 0;
  LcTrainingRule rule_ = LcTrainingRule::kLms;
  std::vector<std::int8_t> packed_w_;
  std::vector<float> mult_;
  std::vector<float> bias_;
  float in_inv_scale_ = 1.0F;
};

}  // namespace cdl
