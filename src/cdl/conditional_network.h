// ConditionalNetwork: the paper's CDLN — a baseline DLN with linear
// classifiers cascaded at convolutional-stage boundaries and an activation
// module that terminates inference early for easy inputs (Algorithm 2).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cdl/activation_module.h"
#include "cdl/linear_classifier.h"
#include "nn/network.h"

namespace cdl {

struct ClassificationResult {
  std::size_t label = 0;
  /// Stage that produced the label: 0..num_stages()-1 for a linear
  /// classifier, num_stages() for the baseline's final (FC) output.
  std::size_t exit_stage = 0;
  float confidence = 0.0F;
  OpCount ops;           ///< operations actually spent on this input
  Tensor probabilities;  ///< class distribution of the deciding stage
};

class ConditionalNetwork {
 public:
  /// Takes ownership of a (typically pre-trained) baseline network.
  ConditionalNetwork(Network baseline, Shape input_shape);

  ConditionalNetwork(ConditionalNetwork&&) = default;
  ConditionalNetwork& operator=(ConditionalNetwork&&) = default;

  [[nodiscard]] Network& baseline() { return baseline_; }
  [[nodiscard]] const Network& baseline() const { return baseline_; }
  [[nodiscard]] const Shape& input_shape() const { return input_shape_; }

  /// Attaches a linear classifier on the features produced by baseline
  /// layers [0, prefix_layers). Classifiers may be attached in any order;
  /// they are kept sorted by prefix. Returns the stage index.
  std::size_t attach_classifier(std::size_t prefix_layers, LcTrainingRule rule,
                                Rng& rng);

  /// Removes the classifier at `stage`; later stage indices shift down.
  void detach_classifier(std::size_t stage);

  /// Number of attached linear classifiers (the final FC stage of the
  /// baseline is not counted; it is stage index num_stages()).
  [[nodiscard]] std::size_t num_stages() const { return stages_.size(); }

  [[nodiscard]] LinearClassifier& classifier(std::size_t stage);
  [[nodiscard]] const LinearClassifier& classifier(std::size_t stage) const;
  [[nodiscard]] std::size_t stage_prefix(std::size_t stage) const;

  /// Stage display name: "O1", "O2", ... and "FC" for the final stage.
  [[nodiscard]] std::string stage_name(std::size_t stage) const;

  [[nodiscard]] ActivationModule& activation_module() { return activation_; }
  [[nodiscard]] const ActivationModule& activation_module() const {
    return activation_;
  }
  /// Sets the runtime efficiency/accuracy knob δ (paper Fig. 10) for every
  /// stage, clearing any per-stage overrides.
  void set_delta(float delta);
  void set_policy(ConfidencePolicy policy);

  /// Per-stage δ override (extension: later early-exit systems tune each
  /// exit's threshold independently; the paper uses a single δ). Overrides
  /// survive until set_delta() resets them.
  void set_stage_delta(std::size_t stage, float delta);
  /// Effective δ used at `stage` (the override if present, else the global).
  [[nodiscard]] float stage_delta(std::size_t stage) const;

  /// Algorithm 2: staged inference with early termination. Const and
  /// cache-free (runs the baseline through Network::infer_range), so it is
  /// safe to call concurrently from many threads on one network.
  [[nodiscard]] ClassificationResult classify(const Tensor& input) const;

  /// Unconditional baseline inference (all layers, no linear classifiers).
  [[nodiscard]] ClassificationResult classify_baseline(const Tensor& input) const;

  /// Batched Algorithm 2: classifies every input, partitioning the batch
  /// across `pool` (serial when null or single-worker). Early-exit decisions
  /// are made per sample exactly as in classify(); result i corresponds to
  /// input i and is bit-identical (label, exit stage, confidence,
  /// probabilities, ops) to a serial classify() for any thread count.
  [[nodiscard]] std::vector<ClassificationResult> classify_batch(
      const std::vector<Tensor>& inputs, ThreadPool* pool = nullptr) const;

  /// Features the stage's linear classifier sees for `input` (prefix forward).
  [[nodiscard]] Tensor stage_features(const Tensor& input, std::size_t stage) const;

  // --- op accounting (precomputed from input_shape) -------------------------
  /// Cost of the full baseline forward pass (the paper's normalization unit).
  [[nodiscard]] OpCount baseline_forward_ops() const;
  /// Incremental cost of reaching + evaluating stage `s`: baseline segment
  /// since the previous stage, the linear classifier, and the decision.
  [[nodiscard]] OpCount stage_ops(std::size_t stage) const;
  /// Cost of the final FC stage after the last linear classifier.
  [[nodiscard]] OpCount final_stage_ops() const;
  /// Cost of the hardest input: every stage plus the final layers.
  [[nodiscard]] OpCount worst_case_ops() const;
  /// Cumulative cost of exiting exactly at `stage` (num_stages() = FC exit).
  [[nodiscard]] OpCount exit_ops(std::size_t stage) const;

  /// Saves/loads baseline + classifier parameters (architecture must match).
  void save(const std::string& path);
  void load(const std::string& path);

 private:
  struct Stage {
    std::size_t prefix_layers;
    LinearClassifier classifier;
    std::optional<float> delta_override;
  };

  [[nodiscard]] std::vector<Tensor*> all_parameters();
  void check_stage(std::size_t stage) const;
  [[nodiscard]] OpCount segment_ops(std::size_t from_layer,
                                    std::size_t to_layer) const;
  /// Rebuilds the cached per-stage/final op tables (classify() consults them
  /// on every call, so they must not be recomputed per input).
  void rebuild_ops_cache();

  Network baseline_;
  Shape input_shape_;
  std::vector<Stage> stages_;
  ActivationModule activation_;
  std::size_t num_classes_;
  std::vector<OpCount> stage_ops_cache_;  ///< incremental cost per stage
  OpCount final_stage_ops_cache_;
};

}  // namespace cdl
