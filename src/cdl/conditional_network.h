// ConditionalNetwork: the paper's CDLN — a baseline DLN with linear
// classifiers cascaded at convolutional-stage boundaries and an activation
// module that terminates inference early for easy inputs (Algorithm 2).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cdl/activation_module.h"
#include "cdl/linear_classifier.h"
#include "cdl/quantized_cascade.h"
#include "core/workspace.h"
#include "nn/network.h"

namespace cdl::obs {
class EnergyMeter;
}  // namespace cdl::obs

namespace cdl {

/// Numeric precision a cascade stage executes in. kInt8 runs the stage's
/// baseline segment and linear classifier through the quantized executors
/// (cdl/quantized_cascade.h); probabilities reach the activation module as
/// fp32 either way, so the delta-decision semantics are identical.
enum class StagePrecision : std::uint8_t { kFp32 = 0, kInt8 = 1 };

[[nodiscard]] const char* to_string(StagePrecision p);

struct ClassificationResult {
  std::size_t label = 0;
  /// Stage that produced the label: 0..num_stages()-1 for a linear
  /// classifier, num_stages() for the baseline's final (FC) output.
  std::size_t exit_stage = 0;
  float confidence = 0.0F;
  OpCount ops;           ///< operations actually spent on this input
  Tensor probabilities;  ///< class distribution of the deciding stage
};

class ConditionalNetwork;

/// Pre-planned arena for ConditionalNetwork::classify_batch_into. One walk
/// of the network sizes every stage's segment plan, packed-GEMM scratch and
/// score block (sequential stages share frame space), so the steady-state
/// batch loop performs zero heap allocations. A workspace planned for
/// (tile, workers) serves any batch size and any pool up to `workers`
/// threads; classify_batch_into replans automatically when the workspace
/// does not match the network.
class BatchWorkspace {
 public:
  static constexpr std::size_t kDefaultTile = 64;

  BatchWorkspace() = default;

  /// Plans buffers for `net`: sub-batches ("tiles") of up to `tile` images
  /// and pools of up to `workers` threads.
  void plan(const ConditionalNetwork& net, std::size_t tile = kDefaultTile,
            std::size_t workers = 1);

  /// Tile classify_batch_into auto-plans for a `count`-image batch on
  /// `workers` threads. Serial runs keep kDefaultTile (small tiles keep a
  /// stage's activations cache-resident); threaded runs grow the tile to
  /// kDefaultTile rows per worker (capped at 512 and at the batch size) so
  /// each stage-level parallel_for carries enough rows per worker to
  /// amortize its fork/join barrier. An explicitly planned workspace is
  /// never re-tiled. Independently of the tile, classify_batch_into drops to
  /// serial execution whenever a stage's surviving-row count falls below its
  /// parallel floor — late stages with a handful of survivors pay more in
  /// fork/join barriers than parallelism returns (see docs/OBSERVABILITY.md).
  [[nodiscard]] static std::size_t auto_tile(std::size_t count,
                                             std::size_t workers);

  /// True when this plan fits `net` driven by a pool of `workers` threads.
  [[nodiscard]] bool matches(const ConditionalNetwork& net,
                             std::size_t workers) const;

  [[nodiscard]] std::size_t tile() const { return tile_; }
  [[nodiscard]] std::size_t capacity_floats() const {
    return arena_.capacity_floats();
  }

 private:
  friend class ConditionalNetwork;

  struct StageExec {
    BlockPlan seg;      ///< baseline segment feeding this stage
    BufferRef scratch;  ///< segment + classifier GEMM scratch (shared)
    BufferRef probs;    ///< tile x classes score/probability block
  };

  const ConditionalNetwork* net_ = nullptr;
  std::size_t tile_ = 0;
  std::size_t workers_ = 0;
  std::size_t baseline_layers_ = 0;
  std::vector<std::size_t> prefixes_;    ///< stage prefixes at plan time
  std::vector<std::uint8_t> precision_;  ///< per-stage precision at plan time
  BufferRef feat_[2];                  ///< ping/pong feature blocks
  std::vector<StageExec> stages_;
  StageExec final_;                    ///< last prefix -> FC logits
  std::vector<std::uint32_t> active_;  ///< original index of each live row
  Workspace arena_;
};

class ConditionalNetwork {
 public:
  /// Takes ownership of a (typically pre-trained) baseline network.
  ConditionalNetwork(Network baseline, Shape input_shape);

  ConditionalNetwork(ConditionalNetwork&&) = default;
  ConditionalNetwork& operator=(ConditionalNetwork&&) = default;

  [[nodiscard]] Network& baseline() { return baseline_; }
  [[nodiscard]] const Network& baseline() const { return baseline_; }
  [[nodiscard]] const Shape& input_shape() const { return input_shape_; }

  /// Attaches a linear classifier on the features produced by baseline
  /// layers [0, prefix_layers). Classifiers may be attached in any order;
  /// they are kept sorted by prefix. Returns the stage index.
  std::size_t attach_classifier(std::size_t prefix_layers, LcTrainingRule rule,
                                Rng& rng);

  /// Removes the classifier at `stage`; later stage indices shift down.
  void detach_classifier(std::size_t stage);

  /// Number of attached linear classifiers (the final FC stage of the
  /// baseline is not counted; it is stage index num_stages()).
  [[nodiscard]] std::size_t num_stages() const { return stages_.size(); }

  /// Output classes every stage scores (the serving layer sizes response
  /// buffers from this).
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }

  [[nodiscard]] LinearClassifier& classifier(std::size_t stage);
  [[nodiscard]] const LinearClassifier& classifier(std::size_t stage) const;
  [[nodiscard]] std::size_t stage_prefix(std::size_t stage) const;

  /// Stage display name: "O1", "O2", ... and "FC" for the final stage.
  [[nodiscard]] std::string stage_name(std::size_t stage) const;

  [[nodiscard]] ActivationModule& activation_module() { return activation_; }
  [[nodiscard]] const ActivationModule& activation_module() const {
    return activation_;
  }
  /// Sets the runtime efficiency/accuracy knob δ (paper Fig. 10) for every
  /// stage, clearing any per-stage overrides.
  void set_delta(float delta);
  void set_policy(ConfidencePolicy policy);

  /// Per-stage δ override (extension: later early-exit systems tune each
  /// exit's threshold independently; the paper uses a single δ). Overrides
  /// survive until set_delta() resets them.
  void set_stage_delta(std::size_t stage, float delta);
  /// Effective δ used at `stage` (the override if present, else the global).
  [[nodiscard]] float stage_delta(std::size_t stage) const;

  // --- per-stage precision (int8 quantized execution) -----------------------
  /// Installs calibration ranges for this network (one boundary per baseline
  /// layer plus the final output; see collect_quant_calibration). Resets all
  /// stage precisions to fp32 — packed int8 parameters derive from both the
  /// calibration and the current weights, so they are rebuilt on demand by
  /// set_stage_precision. Throws std::invalid_argument on a boundary-count
  /// mismatch.
  void set_quantization(QuantCalibration cal);
  [[nodiscard]] bool has_quantization() const { return !quant_cal_.empty(); }
  [[nodiscard]] const QuantCalibration& quantization() const {
    return quant_cal_;
  }

  /// Sets the execution precision of `stage` (num_stages() = the final FC
  /// segment). kInt8 eagerly compiles the stage's quantized executors from
  /// the installed calibration; throws std::logic_error without calibration
  /// and std::invalid_argument when the stage cannot be quantized (see
  /// QuantizedSegment::build). Weight edits after this call do not propagate
  /// to the packed int8 parameters until the precision is set again.
  void set_stage_precision(std::size_t stage, StagePrecision precision);
  [[nodiscard]] StagePrecision stage_precision(std::size_t stage) const;
  /// True when set_stage_precision(stage, kInt8) would succeed.
  [[nodiscard]] bool stage_quantizable(std::size_t stage) const;
  /// set_stage_precision over every stage including the final FC segment.
  void set_cascade_precision(StagePrecision precision);

  /// The stage's compiled int8 executors; null unless its precision is kInt8
  /// (the final stage has no classifier, so its second member stays null).
  [[nodiscard]] const QuantizedSegment* quantized_segment(
      std::size_t stage) const;
  [[nodiscard]] const QuantizedClassifier* quantized_classifier(
      std::size_t stage) const;

  /// Algorithm 2: staged inference with early termination. Const and
  /// cache-free (runs the baseline through Network::infer_range), so it is
  /// safe to call concurrently from many threads on one network.
  [[nodiscard]] ClassificationResult classify(const Tensor& input) const;

  /// Unconditional baseline inference (all layers, no linear classifiers).
  [[nodiscard]] ClassificationResult classify_baseline(const Tensor& input) const;

  /// Batched Algorithm 2, stage-major: the whole batch runs through stage i
  /// as one batched segment (one packed GEMM per conv/dense layer) before
  /// any row reaches stage i+1. The stage's linear classifier scores the
  /// entire surviving block with one GEMM, the δ-decision is applied per
  /// row, exited rows scatter their results back to original indices, and
  /// survivors are compacted into a dense sub-batch. Early-exit decisions
  /// are made per sample exactly as in classify(); result i corresponds to
  /// input i and is bit-identical (label, exit stage, confidence,
  /// probabilities, ops) to a serial classify() for any batch size, thread
  /// count and δ. Convenience wrapper over classify_batch_into with a local
  /// workspace.
  [[nodiscard]] std::vector<ClassificationResult> classify_batch(
      const std::vector<Tensor>& inputs, ThreadPool* pool = nullptr) const;

  /// Zero-allocation form of classify_batch: all scratch lives in `ws`
  /// (replanned automatically when it does not match this network/pool).
  /// With a warm workspace and warm `results` vector, the steady state
  /// performs no heap allocation at all.
  void classify_batch_into(const std::vector<Tensor>& inputs,
                           std::vector<ClassificationResult>& results,
                           BatchWorkspace& ws,
                           ThreadPool* pool = nullptr) const;

  /// Features the stage's linear classifier sees for `input` (prefix forward).
  [[nodiscard]] Tensor stage_features(const Tensor& input, std::size_t stage) const;

  // --- op accounting (precomputed from input_shape) -------------------------
  /// Cost of the full baseline forward pass (the paper's normalization unit).
  [[nodiscard]] OpCount baseline_forward_ops() const;
  /// Incremental cost of reaching + evaluating stage `s`: baseline segment
  /// since the previous stage, the linear classifier, and the decision.
  [[nodiscard]] OpCount stage_ops(std::size_t stage) const;
  /// Cost of the final FC stage after the last linear classifier.
  [[nodiscard]] OpCount final_stage_ops() const;
  /// Cost of the hardest input: every stage plus the final layers.
  [[nodiscard]] OpCount worst_case_ops() const;
  /// Cumulative cost of exiting exactly at `stage` (num_stages() = FC exit).
  [[nodiscard]] OpCount exit_ops(std::size_t stage) const;

  /// Cumulative exit-energy table under `meter` (index = exit stage,
  /// num_stages() = FC exit), priced by each stage's *execution* precision:
  /// quantized stages at the meter's int8 costs, with the final
  /// softmax+argmax always at fp32 — exactly the precision split the
  /// profiler rows carry, so folding a profiler snapshot of the same inputs
  /// through the meter reproduces these figures bit-identically. This is
  /// the per-request energy the serving engine stamps on each Response.
  [[nodiscard]] std::vector<double> exit_energy_table(
      const obs::EnergyMeter& meter) const;

  /// Saves/loads baseline + classifier parameters (architecture must match).
  void save(const std::string& path);
  void load(const std::string& path);

 private:
  struct Stage {
    std::size_t prefix_layers;
    LinearClassifier classifier;
    std::optional<float> delta_override;
  };

  struct QuantExec {
    std::unique_ptr<QuantizedSegment> seg;
    std::unique_ptr<QuantizedClassifier> classifier;
  };

  [[nodiscard]] std::vector<Tensor*> all_parameters();
  void check_stage(std::size_t stage) const;
  /// Baseline layer range [begin, end) that stage `stage` executes
  /// (num_stages() = the final segment after the last classifier prefix).
  [[nodiscard]] std::pair<std::size_t, std::size_t> stage_segment(
      std::size_t stage) const;
  /// Compiles `stage`'s int8 executors; `.seg` is null when unquantizable.
  [[nodiscard]] QuantExec build_quant_exec(std::size_t stage) const;
  /// Drops compiled int8 executors and resets precisions to fp32 (stage
  /// boundaries or weights changed under them).
  void reset_precision_state();
  /// Copies a deciding stage's probability row into `dst`, reusing its
  /// allocation when the shape is already right (warm steady state).
  void store_probabilities(Tensor& dst, const float* row) const;
  [[nodiscard]] OpCount segment_ops(std::size_t from_layer,
                                    std::size_t to_layer) const;
  /// Rebuilds the cached per-stage/final op tables (classify() consults them
  /// on every call, so they must not be recomputed per input).
  void rebuild_ops_cache();

  Network baseline_;
  Shape input_shape_;
  std::vector<Stage> stages_;
  QuantCalibration quant_cal_;
  std::vector<StagePrecision> stage_precision_;  ///< num_stages() + 1 entries
  std::vector<QuantExec> quant_execs_;           ///< parallel to precisions
  ActivationModule activation_;
  std::size_t num_classes_;
  Shape classes_shape_;  ///< Shape{num_classes_}, cached for warm resizes
  std::vector<OpCount> stage_ops_cache_;  ///< incremental cost per stage
  OpCount final_stage_ops_cache_;
};

}  // namespace cdl
