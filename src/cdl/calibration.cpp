#include "cdl/calibration.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/softmax.h"

namespace cdl {

CalibrationReport measure_calibration(ConditionalNetwork& net,
                                      const Dataset& data,
                                      std::size_t num_bins) {
  if (data.empty()) throw std::invalid_argument("measure_calibration: empty data");
  if (num_bins == 0) throw std::invalid_argument("measure_calibration: no bins");

  CalibrationReport report;
  report.bins.assign(num_bins, CalibrationBin{});
  for (std::size_t i = 0; i < data.size(); ++i) {
    const ClassificationResult r = net.classify(data.image(i));
    const double conf = std::clamp(static_cast<double>(r.confidence), 0.0, 1.0);
    auto bin = static_cast<std::size_t>(conf * static_cast<double>(num_bins));
    if (bin == num_bins) bin = num_bins - 1;  // confidence exactly 1
    CalibrationBin& b = report.bins[bin];
    ++b.count;
    b.confidence_sum += conf;
    b.correct += (r.label == data.label(i)) ? 1.0 : 0.0;
    report.mean_confidence += conf;
    report.accuracy += (r.label == data.label(i)) ? 1.0 : 0.0;
  }
  const auto n = static_cast<double>(data.size());
  report.mean_confidence /= n;
  report.accuracy /= n;
  for (const CalibrationBin& b : report.bins) {
    if (b.count == 0) continue;
    const double bin_acc = b.correct / static_cast<double>(b.count);
    const double bin_conf = b.confidence_sum / static_cast<double>(b.count);
    report.ece += (static_cast<double>(b.count) / n) *
                  std::abs(bin_acc - bin_conf);
  }
  return report;
}

double baseline_nll(ConditionalNetwork& net, const Dataset& data,
                    float temperature) {
  if (data.empty()) throw std::invalid_argument("baseline_nll: empty data");
  if (temperature <= 0.0F) {
    throw std::invalid_argument("baseline_nll: temperature must be positive");
  }
  double nll = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    Tensor logits = net.baseline().forward(data.image(i));
    logits *= 1.0F / temperature;
    const Tensor p = softmax(logits);
    nll -= std::log(std::max(p[data.label(i)], 1e-12F));
  }
  return nll / static_cast<double>(data.size());
}

float fit_temperature(ConditionalNetwork& net, const Dataset& validation,
                      float t_lo, float t_hi) {
  if (t_lo <= 0.0F || t_hi <= t_lo) {
    throw std::invalid_argument("fit_temperature: need 0 < t_lo < t_hi");
  }
  // Golden-section search: NLL(T) is unimodal in T for fixed logits.
  constexpr float kGolden = 0.6180339887F;
  float a = t_lo;
  float b = t_hi;
  float x1 = b - kGolden * (b - a);
  float x2 = a + kGolden * (b - a);
  double f1 = baseline_nll(net, validation, x1);
  double f2 = baseline_nll(net, validation, x2);
  for (int iter = 0; iter < 30 && (b - a) > 1e-3F; ++iter) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kGolden * (b - a);
      f1 = baseline_nll(net, validation, x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kGolden * (b - a);
      f2 = baseline_nll(net, validation, x2);
    }
  }
  return (a + b) / 2.0F;
}

}  // namespace cdl
