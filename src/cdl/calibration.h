// Confidence calibration (extension beyond the paper).
//
// The activation module's decision quality depends on how well stage
// confidences track correctness. This module provides:
//   * expected calibration error (ECE) measurement for any CDLN stage, and
//   * temperature scaling (Guo et al., 2017) for softmax-based confidences,
//     fitted on a validation split by 1-D golden-section search on NLL.
//
// LMS stages emit clamped scores rather than a softmax, so temperature
// applies to the final FC stage and to kSoftmaxXent stage classifiers; ECE
// is measurable for every stage.
#pragma once

#include "cdl/conditional_network.h"
#include "data/dataset.h"

namespace cdl {

struct CalibrationBin {
  std::size_t count = 0;
  double confidence_sum = 0.0;
  double correct = 0.0;
};

struct CalibrationReport {
  double ece = 0.0;             ///< expected calibration error in [0,1]
  double mean_confidence = 0.0;
  double accuracy = 0.0;
  std::vector<CalibrationBin> bins;
};

/// ECE of the network's *final decisions* (whatever stage produced them):
/// bins predictions by reported confidence and averages |accuracy - mean
/// confidence| weighted by bin occupancy.
[[nodiscard]] CalibrationReport measure_calibration(ConditionalNetwork& net,
                                                    const Dataset& data,
                                                    std::size_t num_bins = 10);

/// Fits a softmax temperature T > 0 minimizing NLL of the *baseline* (FC)
/// predictions on `validation` via golden-section search over [t_lo, t_hi].
/// Returns the fitted temperature; apply it with ScaledConfidence wrappers
/// or by dividing logits before softmax.
[[nodiscard]] float fit_temperature(ConditionalNetwork& net,
                                    const Dataset& validation,
                                    float t_lo = 0.25F, float t_hi = 8.0F);

/// NLL of baseline logits at a given temperature (exposed for tests).
[[nodiscard]] double baseline_nll(ConditionalNetwork& net, const Dataset& data,
                                  float temperature);

}  // namespace cdl
