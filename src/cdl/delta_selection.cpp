#include "cdl/delta_selection.h"

#include <stdexcept>

namespace cdl {

std::vector<float> default_delta_grid() {
  return {0.30F, 0.40F, 0.50F, 0.55F, 0.60F, 0.65F, 0.70F, 0.75F, 0.80F, 0.90F};
}

DeltaSelection select_delta(ConditionalNetwork& net, const Dataset& validation,
                            std::span<const float> candidates) {
  if (validation.empty()) {
    throw std::invalid_argument("select_delta: empty validation set");
  }
  if (candidates.empty()) {
    throw std::invalid_argument("select_delta: no candidates");
  }

  DeltaSelection selection;
  bool have_best = false;
  for (float delta : candidates) {
    net.set_delta(delta);
    DeltaCandidate candidate;
    candidate.delta = delta;
    std::size_t correct = 0;
    double ops = 0.0;
    for (std::size_t i = 0; i < validation.size(); ++i) {
      const ClassificationResult r = net.classify(validation.image(i));
      if (r.label == validation.label(i)) ++correct;
      ops += static_cast<double>(r.ops.total_compute());
    }
    candidate.accuracy =
        static_cast<double>(correct) / static_cast<double>(validation.size());
    candidate.avg_ops = ops / static_cast<double>(validation.size());
    selection.sweep.push_back(candidate);

    const bool better =
        !have_best || candidate.accuracy > selection.best.accuracy ||
        (candidate.accuracy == selection.best.accuracy &&
         candidate.avg_ops < selection.best.avg_ops);
    if (better) {
      selection.best = candidate;
      have_best = true;
    }
  }
  net.set_delta(selection.best.delta);
  return selection;
}

DeltaSelection select_delta(ConditionalNetwork& net, const Dataset& validation) {
  const std::vector<float> grid = default_delta_grid();
  return select_delta(net, validation, grid);
}

namespace {

struct ValScore {
  double accuracy = 0.0;
  double avg_ops = 0.0;
};

ValScore score(ConditionalNetwork& net, const Dataset& validation) {
  std::size_t correct = 0;
  double ops = 0.0;
  for (std::size_t i = 0; i < validation.size(); ++i) {
    const ClassificationResult r = net.classify(validation.image(i));
    if (r.label == validation.label(i)) ++correct;
    ops += static_cast<double>(r.ops.total_compute());
  }
  return {static_cast<double>(correct) / static_cast<double>(validation.size()),
          ops / static_cast<double>(validation.size())};
}

bool better(const ValScore& a, const ValScore& b) {
  return a.accuracy > b.accuracy ||
         (a.accuracy == b.accuracy && a.avg_ops < b.avg_ops);
}

}  // namespace

StageDeltaSelection select_stage_deltas(ConditionalNetwork& net,
                                        const Dataset& validation,
                                        std::span<const float> candidates) {
  if (net.num_stages() == 0) {
    throw std::invalid_argument("select_stage_deltas: network has no stages");
  }
  // Seed every stage with the best global δ.
  const DeltaSelection global = select_delta(net, validation, candidates);

  StageDeltaSelection selection;
  selection.stage_deltas.assign(net.num_stages(), global.best.delta);
  ValScore best{global.best.accuracy, global.best.avg_ops};

  // Greedy coordinate descent over stages (earlier stages gate the most
  // traffic, so they are swept first).
  for (std::size_t s = 0; s < net.num_stages(); ++s) {
    for (float delta : candidates) {
      if (delta == selection.stage_deltas[s]) continue;
      net.set_stage_delta(s, delta);
      const ValScore candidate = score(net, validation);
      if (better(candidate, best)) {
        best = candidate;
        selection.stage_deltas[s] = delta;
      }
    }
    net.set_stage_delta(s, selection.stage_deltas[s]);
  }
  selection.accuracy = best.accuracy;
  selection.avg_ops = best.avg_ops;
  return selection;
}

StageDeltaSelection select_stage_deltas(ConditionalNetwork& net,
                                        const Dataset& validation) {
  const std::vector<float> grid = default_delta_grid();
  return select_stage_deltas(net, validation, grid);
}

}  // namespace cdl
