#include "cdl/quantized_cascade.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "core/thread_pool.h"
#include "core/workspace.h"
#include "nn/act_kernels.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pool2d.h"
#include "nn/qconv_direct.h"
#include "nn/qgemm.h"
#include "nn/quantize.h"
#include "nn/softmax.h"
#include "obs/layer_profile.h"
#include "obs/trace.h"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

namespace cdl {

namespace {

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Bytes -> floats for carving byte buffers out of a float arena, padded to
/// the workspace alignment quantum.
std::size_t bytes_as_floats(std::size_t bytes) {
  return align_floats(ceil_div(bytes, sizeof(float)));
}

/// s32 analogue of Pool2D::pool_image for the interleaved GEMM output:
/// channel ch's plane starts at `in + ch * channel_stride`. Max pooling on
/// the integer accumulators commutes exactly with the positive-slope
/// dequantization applied afterwards; window 1 is the identity.
/// One 2x2-pooled output row from input rows r0/r1: vertical then horizontal
/// pairwise max. Integer max is exact, so the vector lane below is
/// bit-identical to this scalar rule by construction.
void pool2_row_s32_scalar(const std::int32_t* r0, const std::int32_t* r1,
                          std::size_t ow, std::int32_t* out) {
  for (std::size_t ox = 0; ox < ow; ++ox) {
    const std::int32_t v0 = std::max(r0[2 * ox], r1[2 * ox]);
    const std::int32_t v1 = std::max(r0[2 * ox + 1], r1[2 * ox + 1]);
    out[ox] = std::max(v0, v1);
  }
}

#if defined(__x86_64__) && defined(__GNUC__)
__attribute__((target("avx2"))) void pool2_row_s32_avx2(const std::int32_t* r0,
                                                        const std::int32_t* r1,
                                                        std::size_t ow,
                                                        std::int32_t* out) {
  std::size_t ox = 0;
  for (; ox + 4 <= ow; ox += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r0 + 2 * ox));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r1 + 2 * ox));
    const __m256i v = _mm256_max_epi32(a, b);
    // Pairwise horizontal max: swap pair elements, max, compact even lanes.
    const __m256i sw = _mm256_shuffle_epi32(v, _MM_SHUFFLE(2, 3, 0, 1));
    const __m256i m = _mm256_max_epi32(v, sw);
    const __m256i packed = _mm256_permutevar8x32_epi32(
        m, _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + ox),
                     _mm256_castsi256_si128(packed));
  }
  pool2_row_s32_scalar(r0 + 2 * ox, r1 + 2 * ox, ow - ox, out + ox);
}
#endif

using Pool2RowFn = void (*)(const std::int32_t*, const std::int32_t*,
                            std::size_t, std::int32_t*);

Pool2RowFn select_pool2_row() {
#if defined(__x86_64__) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2")) return pool2_row_s32_avx2;
#endif
  return pool2_row_s32_scalar;
}

void pool_image_s32(const std::int32_t* in, std::size_t channel_stride,
                    std::size_t c, std::size_t h, std::size_t w,
                    std::size_t window, std::int32_t* out) {
  const std::size_t oh = h / window;
  const std::size_t ow = w / window;
  if (window == 1) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      std::memcpy(out + ch * h * w, in + ch * channel_stride,
                  h * w * sizeof(std::int32_t));
    }
    return;
  }
  if (window == 2) {
    static const Pool2RowFn pool2_row = select_pool2_row();
    for (std::size_t ch = 0; ch < c; ++ch) {
      const std::int32_t* plane = in + ch * channel_stride;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        pool2_row(plane + 2 * oy * w, plane + (2 * oy + 1) * w, ow, out);
        out += ow;
      }
    }
    return;
  }
  for (std::size_t ch = 0; ch < c; ++ch) {
    const std::int32_t* plane = in + ch * channel_stride;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        std::int32_t best = std::numeric_limits<std::int32_t>::min();
        for (std::size_t wy = 0; wy < window; ++wy) {
          const std::int32_t* row = plane + (oy * window + wy) * w;
          for (std::size_t wx = 0; wx < window; ++wx) {
            best = std::max(best, row[ox * window + wx]);
          }
        }
        *out++ = best;
      }
    }
  }
}

/// Scalar requantization of one activation value: round-to-nearest-even,
/// clamped to the u8 range. Mirrors quantize_activations_u8 exactly.
std::uint8_t requant_u8(float v, float inv_scale) {
  const float q = std::nearbyintf(v * inv_scale);
  return static_cast<std::uint8_t>(
      std::clamp(q, 0.0F, static_cast<float>(kActQuantLevels)));
}

/// Dequantize one pooled image (fmaf per element, per-channel slope and
/// bias) and apply `act`. Known activations take the fused nn/act_kernels
/// plane route instead (vectorized, lanes bit-identical to this rule); this
/// template serves only the kGeneric fallback, where inlining the caller's
/// lambda still beats a virtual call per element.
template <typename StepT, typename Fn>
void dequant_activate(const std::int32_t* pooled, const StepT& st,
                      std::size_t plane, float* dst, Fn&& act) {
  std::size_t idx = 0;
  for (std::size_t c = 0; c < st.out_c; ++c) {
    const float mult = st.mult[c];
    const float bias = st.bias[c];
    for (std::size_t p = 0; p < plane; ++p, ++idx) {
      dst[idx] =
          act(std::fmaf(static_cast<float>(pooled[idx]), mult, bias));
    }
  }
}

/// Per-channel fused dequantize + activate via the nn/act_kernels plane
/// kernels. Each channel's plane shares one (mult, bias), matching the
/// template above element for element.
using DequantPlaneFn = void (*)(const std::int32_t*, std::size_t, float,
                                float, float*);
template <typename StepT>
void dequant_activate_planes(const std::int32_t* pooled, const StepT& st,
                             std::size_t plane, float* dst,
                             DequantPlaneFn fn) {
  for (std::size_t c = 0; c < st.out_c; ++c) {
    fn(pooled + c * plane, plane, st.mult[c], st.bias[c], dst + c * plane);
  }
}

/// True when the boundary's calibrated range supports zero-point-0 u8.
bool boundary_quantizable(const QuantCalibration& cal, std::size_t b) {
  if (b >= cal.boundaries()) return false;
  const float amax = cal.amax[b];
  const float vmin = cal.vmin[b];
  return std::isfinite(amax) && amax > 0.0F && std::isfinite(vmin) &&
         vmin >= 0.0F;
}

/// Quantizes and packs a row-major (out_ch, k) weight matrix, returning the
/// per-channel dequant multipliers (in_scale * w_scale) and the packed-A
/// operand. When `raw` is non-null it also keeps the unpacked (out_ch, k)
/// s8 matrix for the direct-conv route (same quantization, so both routes
/// multiply identical integers).
void build_quantized_weights(const float* w, std::size_t out_ch,
                             std::size_t k, float in_scale,
                             std::vector<std::int8_t>& packed,
                             std::vector<float>& mult,
                             std::vector<std::int8_t>* raw = nullptr) {
  std::vector<std::int8_t> q(out_ch * k);
  const std::vector<float> scales = quantize_weights_s8(w, out_ch, k,
                                                        q.data());
  packed.resize(qgemm_packed_a_bytes(out_ch, k));
  qgemm_pack_a(out_ch, k, q.data(), packed.data());
  mult.resize(out_ch);
  for (std::size_t oc = 0; oc < out_ch; ++oc) mult[oc] = in_scale * scales[oc];
  if (raw != nullptr) *raw = std::move(q);
}

}  // namespace

QuantCalibration collect_quant_calibration(const Network& baseline,
                                           const Shape& input_shape,
                                           const std::vector<Tensor>& images,
                                           std::size_t n, ThreadPool* pool) {
  const std::size_t layers = baseline.size();
  const std::size_t boundaries = layers + 1;
  const std::size_t total = std::min(n, images.size());
  if (total == 0) {
    throw std::invalid_argument("collect_quant_calibration: no images");
  }
  for (std::size_t i = 0; i < total; ++i) {
    if (!(images[i].shape() == input_shape)) {
      throw std::invalid_argument(
          "collect_quant_calibration: image shape mismatch");
    }
  }

  struct Acc {
    std::vector<float> amax;
    std::vector<float> vmin;
  };
  const auto scan = [&](Acc& acc, std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      Tensor x = images[i];
      for (std::size_t l = 0; l <= layers; ++l) {
        for (const float v : x.values()) {
          acc.amax[l] = std::max(acc.amax[l], v);
          acc.vmin[l] = std::min(acc.vmin[l], v);
        }
        if (l < layers) x = baseline.infer_range(x, l, l + 1);
      }
    }
  };
  const Acc init{
      std::vector<float>(boundaries, -std::numeric_limits<float>::infinity()),
      std::vector<float>(boundaries, std::numeric_limits<float>::infinity())};

  Acc merged = init;
  if (pool != nullptr && pool->size() > 1) {
    // Per-worker accumulators; max/min merging is order-independent, so the
    // result is identical to the serial scan for any worker count.
    std::vector<Acc> per_worker(pool->size(), init);
    pool->parallel_for(0, total,
                       [&](std::size_t worker, std::size_t b, std::size_t e) {
                         scan(per_worker[worker], b, e);
                       });
    for (const Acc& acc : per_worker) {
      for (std::size_t l = 0; l < boundaries; ++l) {
        merged.amax[l] = std::max(merged.amax[l], acc.amax[l]);
        merged.vmin[l] = std::min(merged.vmin[l], acc.vmin[l]);
      }
    }
  } else {
    scan(merged, 0, total);
  }

  QuantCalibration cal;
  cal.amax = std::move(merged.amax);
  cal.vmin = std::move(merged.vmin);
  return cal;
}

std::unique_ptr<QuantizedSegment> QuantizedSegment::build(
    const Network& net, const Shape& in_shape, std::size_t begin,
    std::size_t end, const QuantCalibration& cal) {
  if (begin >= end || end > net.size()) return nullptr;
  if (cal.boundaries() < end) return nullptr;
  const BlockPlan plan = net.plan_block_range(in_shape, begin, end, 1, 1);
  if (plan.steps.empty()) return nullptr;

  auto seg = std::make_unique<QuantizedSegment>();
  seg->begin_ = begin;
  seg->end_ = end;
  seg->in_floats_ = plan.in_floats;
  seg->out_floats_ = plan.out_floats;

  const std::size_t last = plan.steps.size() - 1;
  for (std::size_t s = 0; s < plan.steps.size(); ++s) {
    const BlockStep& bs = plan.steps[s];
    if (!boundary_quantizable(cal, bs.first)) return nullptr;
    const float in_scale = activation_quant_scale(cal.amax[bs.first]);

    Step step;
    step.first = bs.first;
    step.span = bs.span;
    step.name = bs.name + "[int8]";
    step.op_count = bs.op_count;
    step.ops = bs.ops;
    step.in_numel = bs.in_shape.numel();
    step.out_numel = bs.out_shape.numel();
    step.in_inv_scale = 1.0F / in_scale;
    if (s < last) {
      const std::size_t out_boundary = bs.first + bs.span;
      if (!boundary_quantizable(cal, out_boundary)) return nullptr;
      step.out_inv_scale =
          1.0F / activation_quant_scale(cal.amax[out_boundary]);
    }

    if (bs.span == 3) {
      const auto* conv = dynamic_cast<const Conv2D*>(&net.layer(bs.first));
      const auto* act =
          dynamic_cast<const ElementwiseActivation*>(&net.layer(bs.first + 1));
      const auto* pl = dynamic_cast<const Pool2D*>(&net.layer(bs.first + 2));
      if (conv == nullptr || act == nullptr || pl == nullptr) return nullptr;
      // The byte im2col packer supports the paper's valid stride-1 shape
      // only, and s32-domain pooling needs max (or the window-1 identity).
      if (conv->geometry().padding != 0 || conv->geometry().stride != 1) {
        return nullptr;
      }
      if (pl->mode() != PoolMode::kMax && pl->window() != 1) return nullptr;
      if (!act->monotone_nondecreasing()) return nullptr;
      step.kind = Step::Kind::kConvTriple;
      step.in_c = bs.in_shape[0];
      step.in_h = bs.in_shape[1];
      step.in_w = bs.in_shape[2];
      step.kernel = conv->kernel();
      step.out_c = bs.conv_out[0];
      step.conv_oh = bs.conv_out[1];
      step.conv_ow = bs.conv_out[2];
      step.pool_window = pl->window();
      step.out_h = bs.out_shape[1];
      step.out_w = bs.out_shape[2];
      step.act = act;
      if (dynamic_cast<const Sigmoid*>(act) != nullptr) {
        step.act_kind = Step::Act::kSigmoid;
      } else if (dynamic_cast<const Tanh*>(act) != nullptr) {
        step.act_kind = Step::Act::kTanh;
      } else if (dynamic_cast<const ReLU*>(act) != nullptr) {
        step.act_kind = Step::Act::kRelu;
      }
      const std::size_t k = step.in_c * step.kernel * step.kernel;
      step.direct =
          qconv_direct_supported(step.in_c, step.kernel, step.conv_ow) &&
          qconv_direct_profitable(k);
      build_quantized_weights(conv->weights().data(), step.out_c, k, in_scale,
                              step.packed_w, step.mult,
                              step.direct ? &step.raw_w : nullptr);
      step.bias.assign(conv->bias().data(),
                       conv->bias().data() + conv->bias().numel());
    } else if (bs.span == 1 && s == last) {
      const auto* dense = dynamic_cast<const Dense*>(&net.layer(bs.first));
      if (dense == nullptr) return nullptr;
      step.kind = Step::Kind::kDense;
      step.in_features = dense->in_features();
      step.out_c = dense->out_features();
      build_quantized_weights(dense->weights().data(), step.out_c,
                              step.in_features, in_scale, step.packed_w,
                              step.mult);
      step.bias.assign(dense->bias().data(),
                       dense->bias().data() + dense->bias().numel());
    } else {
      return nullptr;
    }
    seg->steps_.push_back(std::move(step));
  }

  // Scratch region extents (per planned sample; resolved per call count).
  for (const Step& step : seg->steps_) {
    seg->max_u8_floats_ =
        std::max(seg->max_u8_floats_, std::max(step.in_numel, step.out_numel));
    if (step.kind == Step::Kind::kConvTriple) {
      const std::size_t k = step.in_c * step.kernel * step.kernel;
      const std::size_t pixels = step.conv_oh * step.conv_ow;
      seg->max_pb_floats_ = std::max(seg->max_pb_floats_, k * pixels);
      seg->max_raw_floats_ = std::max(seg->max_raw_floats_,
                                      step.out_c * pixels);
      seg->max_pool_floats_ = std::max(seg->max_pool_floats_, step.out_numel);
    } else {
      seg->max_pb_floats_ = std::max(seg->max_pb_floats_, step.in_features);
      seg->max_raw_floats_ = std::max(seg->max_raw_floats_, step.out_c);
    }
  }
  return seg;
}

std::size_t QuantizedSegment::scratch_floats(std::size_t count) const {
  // Two u8 ping/pong buffers, the packed-B panels, the s32 GEMM output and
  // the s32 pooled block. Region extents are conservative per-sample maxima
  // (the per-step packed-B bound k * n_cols is >= the exact panel-padded
  // size only after the per-count rounding below, so compute exactly here).
  std::size_t pb_bytes = 0;
  std::size_t raw_elems = 0;
  std::size_t pool_elems = 0;
  std::size_t stage_elems = 0;
  for (const Step& step : steps_) {
    if (step.kind == Step::Kind::kConvTriple) {
      const std::size_t k = step.in_c * step.kernel * step.kernel;
      const std::size_t pixels = step.conv_oh * step.conv_ow;
      // Conv triples run fused per image: one packed-B panel block and one
      // s32 accumulator slice per worker, count slices worst-case.
      pb_bytes = std::max(pb_bytes, count * qgemm_packed_b_bytes(k, pixels));
      raw_elems = std::max(raw_elems, count * step.out_c * pixels);
      pool_elems = std::max(pool_elems, count * step.out_numel);
      if (step.out_inv_scale > 0.0F) {
        stage_elems = std::max(stage_elems, count * step.out_numel);
      }
    } else {
      pb_bytes = std::max(pb_bytes,
                          qgemm_packed_b_bytes(step.in_features, count));
      raw_elems = std::max(raw_elems, step.out_c * count);
    }
  }
  // Each u8 buffer carries kQconvSlackBytes of readable slack for the
  // direct-conv kernel's tail-block pair loads.
  return 2 * bytes_as_floats(count * max_u8_floats_ + kQconvSlackBytes) +
         bytes_as_floats(pb_bytes) + align_floats(raw_elems) +
         align_floats(pool_elems) + align_floats(stage_elems);
}

void QuantizedSegment::run_conv_triple(const Step& step,
                                       const std::uint8_t* in_u8,
                                       std::uint8_t* out_u8, float* out_f32,
                                       std::size_t count, std::uint8_t* pb,
                                       std::int32_t* raw, std::int32_t* pooled,
                                       float* stage, ThreadPool* pool) const {
  const std::size_t pixels = step.conv_oh * step.conv_ow;
  const std::size_t k = step.in_c * step.kernel * step.kernel;
  const bool threaded = pool != nullptr && pool->size() > 1;

  // The whole triple is fused per image: byte im2col -> u8 x s8 GEMM ->
  // s32 max-pool -> dequantize + activation (+ requantize), so the panel
  // and accumulator working set (tens of KB) stays cache-resident instead
  // of streaming megabyte-sized whole-batch buffers through memory. Worker
  // w packs into its own slice of the pb / raw regions (worker w handles
  // chunk w, and chunks beyond `count` are empty, so slice w * per-image
  // extent stays inside the count-sized regions). The s32 accumulators are
  // exact integers — identical for any image grouping — and the float tail
  // applies one fixed rounding per element (known activations inline the
  // classes' own expressions; the batched requantize's vector lane matches
  // requant_u8 byte for byte), so results are bit-identical for any
  // (batch, tile, thread, tier) split.
  const std::size_t pb_img = qgemm_packed_b_bytes(k, pixels);
  const std::size_t raw_img = step.out_c * pixels;
  const std::size_t panels_img = ceil_div(pixels, kQgemmNr);
  struct Ctx {
    const Step* step;
    const std::uint8_t* in;
    std::uint8_t* out_u8;
    float* out_f32;
    std::uint8_t* pb;
    std::int32_t* raw;
    std::int32_t* pooled;
    float* stage;
    std::size_t pixels, k, pb_img, raw_img, panels_img;
  } ctx{&step, in_u8,  out_u8, out_f32, pb,     raw,
        pooled, stage, pixels, k,       pb_img, raw_img,
        panels_img};
  const auto work = [&ctx](std::size_t w, std::size_t b, std::size_t e) {
    const Step& st = *ctx.step;
    const std::size_t plane = st.out_h * st.out_w;
    std::uint8_t* pb_w = ctx.pb + w * ctx.pb_img;
    std::int32_t* raw_w = ctx.raw + w * ctx.raw_img;
    for (std::size_t i = b; i < e; ++i) {
      if (st.direct) {
        // im2col-free route: convolve the CHW u8 image directly. Both
        // routes multiply the same u8 x s8 integers, so raw_w holds the
        // identical s32 accumulators either way.
        qconv_direct(ctx.in + i * st.in_numel, st.in_c, st.in_h, st.in_w,
                     st.kernel, st.raw_w.data(), st.out_c, raw_w);
      } else {
        qgemm_pack_b_im2col(ctx.in + i * st.in_numel, 1, st.in_c, st.in_h,
                            st.in_w, st.kernel, pb_w, 0, ctx.panels_img);
        qgemm_packed({st.out_c, ctx.k, ctx.pixels}, st.packed_w.data(), pb_w,
                     raw_w, nullptr);
      }
      std::int32_t* pooled_img = ctx.pooled + i * st.out_numel;
      pool_image_s32(raw_w, ctx.pixels, st.out_c, st.conv_oh, st.conv_ow,
                     st.pool_window, pooled_img);
      float* dst = ctx.out_u8 != nullptr ? ctx.stage + i * st.out_numel
                                         : ctx.out_f32 + i * st.out_numel;
      switch (st.act_kind) {
        case Step::Act::kSigmoid:
          dequant_activate_planes(pooled_img, st, plane, dst,
                                  dequant_sigmoid_plane);
          break;
        case Step::Act::kTanh:
          dequant_activate_planes(pooled_img, st, plane, dst,
                                  dequant_tanh_plane);
          break;
        case Step::Act::kRelu:
          dequant_activate_planes(pooled_img, st, plane, dst,
                                  dequant_relu_plane);
          break;
        case Step::Act::kGeneric:
          dequant_activate(pooled_img, st, plane, dst, [&st](float x) {
            return st.act->evaluate_one(x);
          });
          break;
      }
      if (ctx.out_u8 != nullptr) {
        quantize_activations_u8(dst, st.out_numel, st.out_inv_scale,
                                ctx.out_u8 + i * st.out_numel);
      }
    }
  };
  if (threaded) {
    pool->parallel_for(0, count, work);
  } else {
    work(0, 0, count);
  }
}

void QuantizedSegment::run_dense(const Step& step, const std::uint8_t* in_u8,
                                 float* out_f32, std::size_t count,
                                 std::uint8_t* pb, std::int32_t* raw,
                                 ThreadPool* pool) const {
  const std::size_t k = step.in_features;
  qgemm_pack_b_transposed(k, count, in_u8, pb);
  // C^T layout: raw(out_c, count) — the scalar dequant below transposes
  // while writing the row-major output.
  qgemm_packed({step.out_c, k, count}, step.packed_w.data(), pb, raw, pool);
  for (std::size_t i = 0; i < count; ++i) {
    float* dst = out_f32 + i * step.out_c;
    for (std::size_t o = 0; o < step.out_c; ++o) {
      dst[o] = std::fmaf(static_cast<float>(raw[o * count + i]), step.mult[o],
                         step.bias[o]);
    }
  }
}

void QuantizedSegment::infer_block(const float* in, float* out,
                                   std::size_t count, float* scratch,
                                   ThreadPool* pool) const {
  if (count == 0) return;
  const bool profiling = obs::LayerProfiler::enabled();
  const std::int32_t prof_stage =
      profiling ? obs::LayerProfiler::current_stage() : obs::kNoStage;

  // Carve the arena: [u8 ping][u8 pong][packed B][s32 raw][s32 pooled]
  // [f32 stage], mirroring scratch_floats(count).
  std::size_t pb_bytes = 0;
  std::size_t raw_elems = 0;
  std::size_t pool_elems = 0;
  for (const Step& step : steps_) {
    if (step.kind == Step::Kind::kConvTriple) {
      const std::size_t k = step.in_c * step.kernel * step.kernel;
      const std::size_t pixels = step.conv_oh * step.conv_ow;
      pb_bytes = std::max(pb_bytes, count * qgemm_packed_b_bytes(k, pixels));
      raw_elems = std::max(raw_elems, count * step.out_c * pixels);
      pool_elems = std::max(pool_elems, count * step.out_numel);
    } else {
      pb_bytes = std::max(pb_bytes,
                          qgemm_packed_b_bytes(step.in_features, count));
      raw_elems = std::max(raw_elems, step.out_c * count);
    }
  }
  const std::size_t u8f =
      bytes_as_floats(count * max_u8_floats_ + kQconvSlackBytes);
  auto* ping = reinterpret_cast<std::uint8_t*>(scratch);
  auto* pong = reinterpret_cast<std::uint8_t*>(scratch + u8f);
  auto* pb = reinterpret_cast<std::uint8_t*>(scratch + 2 * u8f);
  auto* raw = reinterpret_cast<std::int32_t*>(scratch + 2 * u8f +
                                              bytes_as_floats(pb_bytes));
  auto* pooled = raw + align_floats(raw_elems);
  auto* stage = reinterpret_cast<float*>(pooled + align_floats(pool_elems));

  quantize_activations_u8(in, count * in_floats_, steps_[0].in_inv_scale,
                          ping);
  const std::uint8_t* cur = ping;
  std::uint8_t* nxt = pong;
  for (const Step& step : steps_) {
    const std::uint64_t prof_t0 = profiling ? obs::now_ns() : 0;
    if (step.kind == Step::Kind::kConvTriple) {
      const bool requant = step.out_inv_scale > 0.0F;
      run_conv_triple(step, cur, requant ? nxt : nullptr,
                      requant ? nullptr : out, count, pb, raw, pooled, stage,
                      pool);
      if (requant) {
        std::uint8_t* consumed = nxt;
        nxt = const_cast<std::uint8_t*>(cur);
        cur = consumed;
      }
    } else {
      run_dense(step, cur, out, count, pb, raw, pool);
    }
    if (profiling) {
      obs::LayerProfiler::instance().record(
          prof_stage, static_cast<std::int32_t>(step.first), step.name,
          step.span, count, step.op_count * count, obs::now_ns() - prof_t0);
    }
  }
}

std::unique_ptr<QuantizedClassifier> QuantizedClassifier::build(
    const LinearClassifier& lc, float feat_amax, float feat_vmin) {
  if (!std::isfinite(feat_amax) || feat_amax <= 0.0F ||
      !std::isfinite(feat_vmin) || feat_vmin < 0.0F) {
    return nullptr;
  }
  auto qc = std::make_unique<QuantizedClassifier>();
  qc->in_features_ = lc.in_features();
  qc->classes_ = lc.num_classes();
  qc->rule_ = lc.rule();
  const float in_scale = activation_quant_scale(feat_amax);
  qc->in_inv_scale_ = 1.0F / in_scale;
  build_quantized_weights(lc.weights().data(), qc->classes_, qc->in_features_,
                          in_scale, qc->packed_w_, qc->mult_);
  qc->bias_.assign(lc.bias().data(), lc.bias().data() + lc.bias().numel());
  return qc;
}

std::size_t QuantizedClassifier::scratch_floats(std::size_t count) const {
  return bytes_as_floats(count * in_features_) +
         bytes_as_floats(qgemm_packed_b_bytes(in_features_, count)) +
         align_floats(classes_ * count);
}

void QuantizedClassifier::probabilities_block(const float* features,
                                              std::size_t count, float* out,
                                              float* scratch,
                                              ThreadPool* pool) const {
  if (count == 0) return;
  auto* qx = reinterpret_cast<std::uint8_t*>(scratch);
  auto* pb = reinterpret_cast<std::uint8_t*>(
      scratch + bytes_as_floats(count * in_features_));
  auto* ct = reinterpret_cast<std::int32_t*>(
      scratch + bytes_as_floats(count * in_features_) +
      bytes_as_floats(qgemm_packed_b_bytes(in_features_, count)));

  quantize_activations_u8(features, count * in_features_, in_inv_scale_, qx);
  qgemm_pack_b_transposed(in_features_, count, qx, pb);
  qgemm_packed({classes_, in_features_, count}, packed_w_.data(), pb, ct,
               pool);
  for (std::size_t i = 0; i < count; ++i) {
    float* row = out + i * classes_;
    for (std::size_t c = 0; c < classes_; ++c) {
      row[c] = std::fmaf(static_cast<float>(ct[c * count + i]), mult_[c],
                         bias_[c]);
    }
    if (rule_ == LcTrainingRule::kSoftmaxXent) {
      softmax_into(row, row, classes_);
    } else {
      for (std::size_t c = 0; c < classes_; ++c) {
        row[c] = std::clamp(row[c], 0.0F, 1.0F);
      }
    }
  }
}

}  // namespace cdl
