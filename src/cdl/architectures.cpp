#include "cdl/architectures.h"

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pool2d.h"

namespace cdl {

Network make_mnist_2c_baseline() {
  Network net;
  net.emplace<Conv2D>(1, 6, 5, ConvAlgo::kIm2col);   // 28x28 -> 24x24
  net.emplace<Sigmoid>();
  net.emplace<Pool2D>(2);         // -> 12x12
  net.emplace<Conv2D>(6, 12, 5, ConvAlgo::kIm2col);  // -> 8x8, 12 maps
  net.emplace<Sigmoid>();
  net.emplace<Pool2D>(2);         // -> 4x4
  net.emplace<Dense>(12 * 4 * 4, 10);
  return net;
}

CdlArchitecture mnist_2c() {
  return CdlArchitecture{
      .name = "MNIST_2C",
      .input_shape = Shape{1, 28, 28},
      .default_stages = {3},       // O1 after P1 (prefix: conv, sigmoid, pool)
      .candidate_stages = {3, 6},  // + O2 after P2 for stage sweeps
      .make_baseline = &make_mnist_2c_baseline,
  };
}

Network make_mnist_3c_baseline() {
  Network net;
  net.emplace<Conv2D>(1, 3, 3, ConvAlgo::kIm2col);   // 28x28 -> 26x26
  net.emplace<Sigmoid>();
  net.emplace<Pool2D>(2);         // -> 13x13
  net.emplace<Conv2D>(3, 6, 4, ConvAlgo::kIm2col);   // -> 10x10, 6 maps
  net.emplace<Sigmoid>();
  net.emplace<Pool2D>(2);         // -> 5x5
  net.emplace<Conv2D>(6, 9, 3, ConvAlgo::kIm2col);   // -> 3x3, 9 maps
  net.emplace<Sigmoid>();
  net.emplace<Pool2D>(1);         // paper's P3 keeps the 3x3 extent
  net.emplace<Dense>(9 * 3 * 3, 10);
  return net;
}

CdlArchitecture mnist_3c() {
  return CdlArchitecture{
      .name = "MNIST_3C",
      .input_shape = Shape{1, 28, 28},
      .default_stages = {3, 6},       // O1 after P1, O2 after P2
      .candidate_stages = {3, 6, 9},  // + O3 after P3 (rejected by gain test)
      .make_baseline = &make_mnist_3c_baseline,
  };
}

std::vector<CdlArchitecture> paper_architectures() {
  return {mnist_2c(), mnist_3c()};
}

}  // namespace cdl
