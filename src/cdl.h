// Umbrella header: everything a downstream user of the CDL library needs.
//
//   #include <cdl.h>
//
// Fine-grained headers remain available for faster compiles; this header is
// the stable public surface.
#pragma once

// Core tensor substrate.
#include "core/rng.h"       // IWYU pragma: export
#include "core/shape.h"     // IWYU pragma: export
#include "core/tensor.h"    // IWYU pragma: export

// Observability: tracing, metrics, exit profiles, attribution, reports.
#include "obs/energy_meter.h"   // IWYU pragma: export
#include "obs/exit_profile.h"   // IWYU pragma: export
#include "obs/layer_profile.h"  // IWYU pragma: export
#include "obs/metrics.h"        // IWYU pragma: export
#include "obs/perf_counters.h"  // IWYU pragma: export
#include "obs/registry.h"       // IWYU pragma: export
#include "obs/run_report.h"     // IWYU pragma: export
#include "obs/trace.h"          // IWYU pragma: export

// Neural-network substrate.
#include "nn/activations.h"  // IWYU pragma: export
#include "nn/conv2d.h"       // IWYU pragma: export
#include "nn/dense.h"        // IWYU pragma: export
#include "nn/loss.h"         // IWYU pragma: export
#include "nn/network.h"      // IWYU pragma: export
#include "nn/opcount.h"      // IWYU pragma: export
#include "nn/optimizer.h"    // IWYU pragma: export
#include "nn/pool2d.h"       // IWYU pragma: export
#include "nn/quantize.h"     // IWYU pragma: export
#include "nn/serialize.h"    // IWYU pragma: export
#include "nn/softmax.h"      // IWYU pragma: export

// Data pipeline.
#include "data/dataset.h"            // IWYU pragma: export
#include "data/idx_loader.h"         // IWYU pragma: export
#include "data/stroke_renderer.h"    // IWYU pragma: export
#include "data/synthetic_letters.h"  // IWYU pragma: export
#include "data/synthetic_mnist.h"    // IWYU pragma: export
#include "data/transforms.h"         // IWYU pragma: export

// The paper's contribution and its extensions.
#include "cdl/activation_module.h"    // IWYU pragma: export
#include "cdl/architectures.h"        // IWYU pragma: export
#include "cdl/calibration.h"          // IWYU pragma: export
#include "cdl/cdl_trainer.h"          // IWYU pragma: export
#include "cdl/conditional_network.h"  // IWYU pragma: export
#include "cdl/delta_selection.h"      // IWYU pragma: export
#include "cdl/linear_classifier.h"    // IWYU pragma: export

// Serving engine: request queue, dynamic batcher, SLO accounting.
#include "serve/batcher.h"        // IWYU pragma: export
#include "serve/clock.h"          // IWYU pragma: export
#include "serve/energy_budget.h"  // IWYU pragma: export
#include "serve/engine.h"         // IWYU pragma: export
#include "serve/model_registry.h"  // IWYU pragma: export
#include "serve/observer.h"        // IWYU pragma: export
#include "serve/request.h"         // IWYU pragma: export
#include "serve/request_queue.h"   // IWYU pragma: export
#include "serve/slo.h"             // IWYU pragma: export

// Comparison baseline, energy/latency models, evaluation.
#include "energy/energy_model.h"        // IWYU pragma: export
#include "energy/op_profile.h"          // IWYU pragma: export
#include "energy/report.h"              // IWYU pragma: export
#include "eval/ascii_art.h"             // IWYU pragma: export
#include "eval/confusion.h"             // IWYU pragma: export
#include "eval/csv.h"                   // IWYU pragma: export
#include "eval/metrics.h"               // IWYU pragma: export
#include "eval/pgm.h"                   // IWYU pragma: export
#include "eval/table.h"                 // IWYU pragma: export
#include "hw/accelerator_model.h"       // IWYU pragma: export
#include "hw/fault_injection.h"         // IWYU pragma: export
#include "hw/systolic_mapping.h"        // IWYU pragma: export
#include "hw/voltage_scaling.h"         // IWYU pragma: export
#include "scalable/scalable_cascade.h"  // IWYU pragma: export
