#include "nn/dense.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/workspace.h"
#include "nn/gemm.h"

namespace cdl {

Dense::Dense(std::size_t in_features, std::size_t out_features)
    : in_features_(in_features),
      out_features_(out_features),
      weights_(Shape{out_features, in_features}),
      bias_(Shape{out_features}),
      grad_weights_(weights_.shape()),
      grad_bias_(bias_.shape()) {
  if (in_features == 0 || out_features == 0) {
    throw std::invalid_argument("Dense: feature counts must be positive");
  }
}

Shape Dense::output_shape(const Shape& input_shape) const {
  if (input_shape.numel() != in_features_) {
    throw std::invalid_argument("Dense(" + name() + "): input " +
                                input_shape.to_string() + " has " +
                                std::to_string(input_shape.numel()) +
                                " elements, expected " +
                                std::to_string(in_features_));
  }
  return Shape{out_features_};
}

void Dense::init(Rng& rng) {
  const float bound = std::sqrt(6.0F / static_cast<float>(in_features_)) * 0.5F;
  for (float& w : weights_.values()) w = rng.uniform(-bound, bound);
  bias_.zero();
  grad_weights_.zero();
  grad_bias_.zero();
}

Tensor Dense::forward(const Tensor& input) {
  (void)output_shape(input.shape());  // validates
  cached_input_shape_ = input.shape();
  cached_input_ = input.reshaped(Shape{in_features_});
  return infer(input);
}

Tensor Dense::infer(const Tensor& input) const {
  (void)output_shape(input.shape());  // validates
  // Runs the same packed micro-kernel as infer_block so per-image and
  // batched inference agree bit-exactly: the wide kernel clone contracts
  // mul+add into FMAs, so a plain scalar loop would round differently.
  thread_local std::vector<float> scratch;
  scratch.resize(infer_block_scratch_floats(input.shape(), 1, 1));
  Tensor out(Shape{out_features_});
  infer_block(input.shape(), input.data(), out.data(), 1, scratch.data(),
              nullptr);
  return out;
}

std::size_t Dense::infer_block_scratch_floats(const Shape& in_shape,
                                              std::size_t count,
                                              std::size_t workers) const {
  (void)in_shape;
  (void)workers;
  return align_floats(gemm_packed_a_floats(count, in_features_)) +
         align_floats(gemm_packed_b_floats(in_features_, out_features_));
}

void Dense::infer_block(const Shape& in_shape, const float* in, float* out,
                        std::size_t count, float* scratch,
                        ThreadPool* pool) const {
  // Validate without output_shape(): constructing the result Shape would
  // heap-allocate on the steady-state path.
  if (in_shape.numel() != in_features_) {
    throw std::invalid_argument("Dense(" + name() + "): bad block input " +
                                in_shape.to_string());
  }
  float* pa = scratch;
  float* pb = pa + align_floats(gemm_packed_a_floats(count, in_features_));
  gemm_pack_a(count, in_features_, in, pa);
  gemm_pack_b_transposed(in_features_, out_features_, weights_.data(), pb);
  sgemm_packed({count, in_features_, out_features_}, pa, pb, out,
               bias_.data(), pool);
}

Tensor Dense::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("Dense::backward called before forward");
  }
  if (grad_output.shape() != Shape{out_features_}) {
    throw std::invalid_argument("Dense::backward: grad shape " +
                                grad_output.shape().to_string());
  }

  Tensor grad_input(Shape{in_features_});
  for (std::size_t o = 0; o < out_features_; ++o) {
    const float g = grad_output[o];
    grad_bias_[o] += g;
    const float* w_row = weights_.data() + o * in_features_;
    float* gw_row = grad_weights_.data() + o * in_features_;
    for (std::size_t i = 0; i < in_features_; ++i) {
      gw_row[i] += g * cached_input_[i];
      grad_input[i] += g * w_row[i];
    }
  }
  return grad_input.reshaped(cached_input_shape_);
}

OpCount Dense::forward_ops(const Shape& input_shape) const {
  (void)output_shape(input_shape);
  OpCount ops;
  ops.macs = static_cast<std::uint64_t>(out_features_) * in_features_;
  ops.adds = out_features_;  // bias
  ops.mem_reads = 2 * ops.macs + out_features_;
  ops.mem_writes = out_features_;
  return ops;
}

std::string Dense::name() const {
  return "dense" + std::to_string(in_features_) + "x" +
         std::to_string(out_features_);
}

}  // namespace cdl
