#include "nn/dense.h"

#include <cmath>
#include <stdexcept>

namespace cdl {

Dense::Dense(std::size_t in_features, std::size_t out_features)
    : in_features_(in_features),
      out_features_(out_features),
      weights_(Shape{out_features, in_features}),
      bias_(Shape{out_features}),
      grad_weights_(weights_.shape()),
      grad_bias_(bias_.shape()) {
  if (in_features == 0 || out_features == 0) {
    throw std::invalid_argument("Dense: feature counts must be positive");
  }
}

Shape Dense::output_shape(const Shape& input_shape) const {
  if (input_shape.numel() != in_features_) {
    throw std::invalid_argument("Dense(" + name() + "): input " +
                                input_shape.to_string() + " has " +
                                std::to_string(input_shape.numel()) +
                                " elements, expected " +
                                std::to_string(in_features_));
  }
  return Shape{out_features_};
}

void Dense::init(Rng& rng) {
  const float bound = std::sqrt(6.0F / static_cast<float>(in_features_)) * 0.5F;
  for (float& w : weights_.values()) w = rng.uniform(-bound, bound);
  bias_.zero();
  grad_weights_.zero();
  grad_bias_.zero();
}

Tensor Dense::forward(const Tensor& input) {
  (void)output_shape(input.shape());  // validates
  cached_input_shape_ = input.shape();
  cached_input_ = input.reshaped(Shape{in_features_});
  return infer(input);
}

Tensor Dense::infer(const Tensor& input) const {
  (void)output_shape(input.shape());  // validates
  const float* in = input.data();  // flattened view, no copy
  Tensor out(Shape{out_features_});
  for (std::size_t o = 0; o < out_features_; ++o) {
    const float* w_row = weights_.data() + o * in_features_;
    float acc = bias_[o];
    for (std::size_t i = 0; i < in_features_; ++i) {
      acc += w_row[i] * in[i];
    }
    out[o] = acc;
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("Dense::backward called before forward");
  }
  if (grad_output.shape() != Shape{out_features_}) {
    throw std::invalid_argument("Dense::backward: grad shape " +
                                grad_output.shape().to_string());
  }

  Tensor grad_input(Shape{in_features_});
  for (std::size_t o = 0; o < out_features_; ++o) {
    const float g = grad_output[o];
    grad_bias_[o] += g;
    const float* w_row = weights_.data() + o * in_features_;
    float* gw_row = grad_weights_.data() + o * in_features_;
    for (std::size_t i = 0; i < in_features_; ++i) {
      gw_row[i] += g * cached_input_[i];
      grad_input[i] += g * w_row[i];
    }
  }
  return grad_input.reshaped(cached_input_shape_);
}

OpCount Dense::forward_ops(const Shape& input_shape) const {
  (void)output_shape(input_shape);
  OpCount ops;
  ops.macs = static_cast<std::uint64_t>(out_features_) * in_features_;
  ops.adds = out_features_;  // bias
  ops.mem_reads = 2 * ops.macs + out_features_;
  ops.mem_writes = out_features_;
  return ops;
}

std::string Dense::name() const {
  return "dense" + std::to_string(in_features_) + "x" +
         std::to_string(out_features_);
}

}  // namespace cdl
