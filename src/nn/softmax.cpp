#include "nn/softmax.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cdl {

Tensor softmax(const Tensor& logits) {
  if (logits.numel() == 0) {
    throw std::invalid_argument("softmax: empty input");
  }
  Tensor probs(logits.shape());
  softmax_into(logits.data(), probs.data(), logits.numel());
  return probs;
}

void softmax_into(const float* in, float* out, std::size_t n) {
  if (n == 0) throw std::invalid_argument("softmax: empty input");
  // Same max as Tensor::max (std::max_element) so results stay bit-identical
  // to the Tensor overload.
  const float m = *std::max_element(in, in + n);
  float denom = 0.0F;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::exp(in[i] - m);
    denom += out[i];
  }
  for (std::size_t i = 0; i < n; ++i) out[i] /= denom;
}

OpCount softmax_ops(std::size_t n) {
  OpCount ops;
  ops.compares = n - 1;   // max for stability
  ops.activations = n;    // exponentials
  ops.adds = 2 * n - 1;   // subtract max, accumulate denominator
  ops.divides = n;
  ops.mem_reads = n;
  ops.mem_writes = n;
  return ops;
}

float max_probability(const Tensor& probs) { return probs.max(); }

float max_probability(const float* probs, std::size_t n) {
  if (n == 0) throw std::invalid_argument("max_probability: empty input");
  return *std::max_element(probs, probs + n);
}

float probability_margin(const Tensor& probs) {
  return probability_margin(probs.data(), probs.numel());
}

float probability_margin(const float* probs, std::size_t n) {
  if (n < 2) return n == 1 ? probs[0] : 0.0F;
  float best = -1.0F, second = -1.0F;
  for (std::size_t i = 0; i < n; ++i) {
    if (probs[i] > best) {
      second = best;
      best = probs[i];
    } else if (probs[i] > second) {
      second = probs[i];
    }
  }
  return best - second;
}

float entropy_confidence(const Tensor& probs) {
  return entropy_confidence(probs.data(), probs.numel());
}

float entropy_confidence(const float* probs, std::size_t n) {
  if (n < 2) return 1.0F;
  // Normalize defensively: LMS stages emit clamped scores, not a simplex.
  float total = 0.0F;
  for (std::size_t i = 0; i < n; ++i) total += probs[i];
  if (total <= 0.0F) return 0.0F;
  float h = 0.0F;
  for (std::size_t i = 0; i < n; ++i) {
    const float p = probs[i] / total;
    if (p > 0.0F) h -= p * std::log(p);
  }
  const float h_max = std::log(static_cast<float>(n));
  return std::clamp(1.0F - h / h_max, 0.0F, 1.0F);
}

}  // namespace cdl
