#include "nn/quantize.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/qgemm.h"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

namespace cdl {

double fake_quantize_tensor(Tensor& t, unsigned bits) {
  if (bits < 2 || bits > 32) {
    throw std::invalid_argument("fake_quantize: bits must be in [2, 32]");
  }
  if (t.empty()) return 0.0;

  float max_abs = 0.0F;
  for (float v : t.values()) max_abs = std::max(max_abs, std::abs(v));
  if (max_abs == 0.0F) return 0.0;

  const float levels = static_cast<float>((1ULL << (bits - 1)) - 1);
  const float scale = max_abs / levels;
  double max_err = 0.0;
  for (float& v : t.values()) {
    const float q = std::clamp(std::round(v / scale), -levels, levels);
    const float snapped = q * scale;
    max_err = std::max(max_err, static_cast<double>(std::abs(v - snapped)));
    v = snapped;
  }
  return max_err;
}

QuantizationReport fake_quantize(std::span<Tensor* const> params,
                                 unsigned bits) {
  QuantizationReport report;
  report.bits = bits;
  for (Tensor* t : params) {
    report.max_abs_error =
        std::max(report.max_abs_error, fake_quantize_tensor(*t, bits));
    ++report.tensors;
    report.values += t->numel();
  }
  return report;
}

QuantizationReport fake_quantize_network(Network& net, unsigned bits) {
  const std::vector<Tensor*> params = net.parameters();
  return fake_quantize(params, bits);
}

QuantizationReport fake_quantize_cdln(ConditionalNetwork& net, unsigned bits) {
  std::vector<Tensor*> params = net.baseline().parameters();
  for (std::size_t s = 0; s < net.num_stages(); ++s) {
    for (Tensor* p : net.classifier(s).parameters()) params.push_back(p);
  }
  return fake_quantize(params, bits);
}

float activation_quant_scale(float amax) {
  if (!std::isfinite(amax) || amax <= 0.0F) return 1.0F;
  return amax / static_cast<float>(kActQuantLevels);
}

namespace {

void quantize_u8_scalar(const float* in, std::size_t n, float inv_scale,
                        std::uint8_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const float q = std::nearbyintf(in[i] * inv_scale);
    const float clamped =
        std::clamp(q, 0.0F, static_cast<float>(kActQuantLevels));
    out[i] = static_cast<std::uint8_t>(clamped);
  }
}

#if defined(__x86_64__) && defined(__GNUC__)
/// AVX2 lane: clamp in the float domain, then vcvtps2dq — which rounds
/// round-to-nearest-even exactly like nearbyintf under the default rounding
/// mode — so every byte is bit-identical to quantize_u8_scalar. The pack
/// stages only reorder values already in [0, 255].
__attribute__((target("avx2"))) void quantize_u8_avx2(const float* in,
                                                      std::size_t n,
                                                      float inv_scale,
                                                      std::uint8_t* out) {
  const __m256 vscale = _mm256_set1_ps(inv_scale);
  const __m256 lo = _mm256_setzero_ps();
  const __m256 hi = _mm256_set1_ps(static_cast<float>(kActQuantLevels));
// Lambdas do not inherit the enclosing target attribute, so this is a macro.
#define CDL_Q8_TO_S32(p)                                              \
  _mm256_cvtps_epi32(_mm256_min_ps(                                   \
      _mm256_max_ps(_mm256_mul_ps(_mm256_loadu_ps(p), vscale), lo), hi))
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    // packs interleave 128-bit lanes; the permute restores element order.
    const __m256i words_ab =
        _mm256_packus_epi32(CDL_Q8_TO_S32(in + i), CDL_Q8_TO_S32(in + i + 8));
    const __m256i words_cd = _mm256_packus_epi32(
        CDL_Q8_TO_S32(in + i + 16), CDL_Q8_TO_S32(in + i + 24));
#undef CDL_Q8_TO_S32
    const __m256i bytes = _mm256_packus_epi16(words_ab, words_cd);
    const __m256i ordered = _mm256_permutevar8x32_epi32(
        bytes, _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), ordered);
  }
  quantize_u8_scalar(in + i, n - i, inv_scale, out + i);
}
#endif

using QuantU8Fn = void (*)(const float*, std::size_t, float, std::uint8_t*);

QuantU8Fn select_quantize_u8() {
#if defined(__x86_64__) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2")) return quantize_u8_avx2;
#endif
  return quantize_u8_scalar;
}

}  // namespace

void quantize_activations_u8(const float* in, std::size_t n, float inv_scale,
                             std::uint8_t* out) {
  static const QuantU8Fn fn = select_quantize_u8();
  fn(in, n, inv_scale, out);
}

std::vector<float> quantize_weights_s8(const float* w, std::size_t out_ch,
                                       std::size_t k, std::int8_t* out) {
  const float levels = static_cast<float>(kQgemmWeightMax);
  std::vector<float> scales(out_ch, 1.0F);
  for (std::size_t oc = 0; oc < out_ch; ++oc) {
    const float* row = w + oc * k;
    float max_abs = 0.0F;
    for (std::size_t p = 0; p < k; ++p) {
      max_abs = std::max(max_abs, std::abs(row[p]));
    }
    const float scale = max_abs > 0.0F ? max_abs / levels : 1.0F;
    const float inv_scale = 1.0F / scale;
    scales[oc] = scale;
    std::int8_t* dst = out + oc * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float q =
          std::clamp(std::nearbyintf(row[p] * inv_scale), -levels, levels);
      dst[p] = static_cast<std::int8_t>(q);
    }
  }
  return scales;
}

}  // namespace cdl
