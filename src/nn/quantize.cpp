#include "nn/quantize.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cdl {

double fake_quantize_tensor(Tensor& t, unsigned bits) {
  if (bits < 2 || bits > 32) {
    throw std::invalid_argument("fake_quantize: bits must be in [2, 32]");
  }
  if (t.empty()) return 0.0;

  float max_abs = 0.0F;
  for (float v : t.values()) max_abs = std::max(max_abs, std::abs(v));
  if (max_abs == 0.0F) return 0.0;

  const float levels = static_cast<float>((1ULL << (bits - 1)) - 1);
  const float scale = max_abs / levels;
  double max_err = 0.0;
  for (float& v : t.values()) {
    const float q = std::clamp(std::round(v / scale), -levels, levels);
    const float snapped = q * scale;
    max_err = std::max(max_err, static_cast<double>(std::abs(v - snapped)));
    v = snapped;
  }
  return max_err;
}

QuantizationReport fake_quantize(std::span<Tensor* const> params,
                                 unsigned bits) {
  QuantizationReport report;
  report.bits = bits;
  for (Tensor* t : params) {
    report.max_abs_error =
        std::max(report.max_abs_error, fake_quantize_tensor(*t, bits));
    ++report.tensors;
    report.values += t->numel();
  }
  return report;
}

QuantizationReport fake_quantize_network(Network& net, unsigned bits) {
  const std::vector<Tensor*> params = net.parameters();
  return fake_quantize(params, bits);
}

QuantizationReport fake_quantize_cdln(ConditionalNetwork& net, unsigned bits) {
  std::vector<Tensor*> params = net.baseline().parameters();
  for (std::size_t s = 0; s < net.num_stages(); ++s) {
    for (Tensor* p : net.classifier(s).parameters()) params.push_back(p);
  }
  return fake_quantize(params, bits);
}

}  // namespace cdl
