// Conv2D: 2-D convolution over CHW tensors with optional zero padding and
// stride (defaults reproduce the paper's valid / stride-1 convolution).
//
// This is the convolution used by LeNet-style networks: each output map is
// the sum over input channels of a KxK correlation plus a per-map bias.
#pragma once

#include "nn/layer.h"

namespace cdl {

/// Forward-pass implementation strategy. Both produce identical results
/// (within float rounding). kIm2col historically lowered the convolution to
/// one GEMM; at stride 1 it now runs a vectorized direct kernel with the
/// same per-element accumulation order (taps in im2col order, bias last),
/// which skips the im2col + packing traffic entirely. kDirect keeps the
/// scalar bias-first reference loops. Strided convolutions always use the
/// scalar direct path.
enum class ConvAlgo { kDirect, kIm2col };

/// Spatial geometry: symmetric zero padding and stride. Output extent is
/// floor((H + 2*padding - K) / stride) + 1.
struct ConvGeometry {
  std::size_t stride = 1;
  std::size_t padding = 0;
};

/// Name of the row-kernel tier the stride-1 conv path dispatches to on this
/// machine ("avx2-fma" or "scalar"), resolved once at first use. Honors
/// CDL_FORCE_SCALAR like the int8 GEMM (nn/qgemm.h), so a forced-scalar run
/// exercises the portable kernels end to end.
[[nodiscard]] const char* conv_dispatch_tier();

class Conv2D final : public Layer {
 public:
  /// `kernel` is the square kernel side K.
  Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         ConvAlgo algo = ConvAlgo::kDirect, ConvGeometry geometry = {});

  Tensor forward(const Tensor& input) override;
  [[nodiscard]] Tensor infer(const Tensor& input) const override;
  [[nodiscard]] std::size_t infer_block_scratch_floats(
      const Shape& in_shape, std::size_t count,
      std::size_t workers) const override;
  void infer_block(const Shape& in_shape, const float* in, float* out,
                   std::size_t count, float* scratch,
                   ThreadPool* pool) const override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input_shape) const override;
  [[nodiscard]] OpCount forward_ops(const Shape& input_shape) const override;
  [[nodiscard]] std::string name() const override;

  // --- stage-resident batched lowering --------------------------------------

  /// True when this conv runs the vectorized stride-1 kernel (im2col algo,
  /// stride 1) — the precondition for infer_block_interleaved and for the
  /// executor's conv->activation->maxpool fusion. Every entry point
  /// (forward, infer, infer_block, infer_block_interleaved) dispatches on
  /// this same predicate, so per-image and batched results are bit-identical.
  [[nodiscard]] bool block_lowered() const {
    return algo_ == ConvAlgo::kIm2col && geometry_.stride == 1;
  }

  [[nodiscard]] std::size_t interleaved_scratch_floats(
      const Shape& in_shape, std::size_t count, std::size_t workers) const;

  /// Batched convolution of `count` contiguous CHW images into the
  /// stage-resident interleaved layout: `raw_out` receives (out_c, count *
  /// OH*OW) where image i's pixels occupy columns [i*OH*OW, (i+1)*OH*OW) of
  /// every channel row. Bias is applied last, exactly like the serial
  /// im2col path, so each image's values are bit-identical to infer().
  /// Requires block_lowered().
  void infer_block_interleaved(const Shape& in_shape, const float* in,
                               std::size_t count, float* raw_out,
                               float* scratch, ThreadPool* pool) const;

  /// Single-image convolution of one raw CHW (in_c, h, w) image into a plain
  /// CHW output, running the same vectorized stride-1 kernel as every other
  /// block_lowered() entry point (bit-identical per image). `pad_scratch`
  /// must hold in_c * (h+2p) * (w+2p) floats when the conv pads (may be
  /// null for padding-0 convs). This is the per-image building block of the
  /// fused span-3 executor: conv -> pool -> activate without leaving the
  /// worker's cache.
  void conv_image(const float* img, std::size_t h, std::size_t w, float* out,
                  float* pad_scratch) const;

  std::vector<Tensor*> parameters() override { return {&weights_, &bias_}; }
  std::vector<Tensor*> gradients() override { return {&grad_weights_, &grad_bias_}; }
  void init(Rng& rng) override;

  [[nodiscard]] std::size_t in_channels() const { return in_channels_; }
  [[nodiscard]] std::size_t out_channels() const { return out_channels_; }
  [[nodiscard]] std::size_t kernel() const { return kernel_; }
  [[nodiscard]] const ConvGeometry& geometry() const { return geometry_; }

  [[nodiscard]] const Tensor& weights() const { return weights_; }
  [[nodiscard]] const Tensor& bias() const { return bias_; }

  [[nodiscard]] ConvAlgo algo() const { return algo_; }
  void set_algo(ConvAlgo algo) { algo_ = algo; }

 private:
  void check_input(const Shape& s) const;
  /// Writes the zero-padded input into `padded` (resized; storage reused).
  void pad_into(const Tensor& input, Tensor& padded) const;
  /// Raw-pointer core of pad_into: one CHW image (h x w planes) into a
  /// zero-padded buffer of (h+2p) x (w+2p) planes.
  void pad_image(const float* img, std::size_t h, std::size_t w,
                 float* padded) const;
  [[nodiscard]] Tensor forward_direct(const Tensor& padded) const;
  /// Scalar core of forward_direct, writing into `out` (CHW, contiguous).
  void direct_into(const float* padded, std::size_t h, std::size_t w,
                   float* out) const;
  /// Vectorized stride-1 kernel shared by every block_lowered() entry point:
  /// output map `oc` of the padded (in_c, h, w) image goes to
  /// `out + oc * out_ch_stride` (contiguous oh x ow row-major). With
  /// out_ch_stride = count * pixels this writes the stage-resident
  /// interleaved layout directly; with out_ch_stride = pixels it writes a
  /// plain CHW image.
  void lowered_into(const float* padded, std::size_t h, std::size_t w,
                    float* out, std::size_t out_ch_stride) const;
  /// Tensor-building wrapper over lowered_into for forward()/infer().
  [[nodiscard]] Tensor forward_lowered(const Tensor& padded) const;

  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_;
  ConvAlgo algo_;
  ConvGeometry geometry_;

  Tensor weights_;       ///< (out_c, in_c, K, K)
  Tensor bias_;          ///< (out_c)
  Tensor grad_weights_;  ///< accumulated d-loss/d-weights
  Tensor grad_bias_;
  Tensor cached_input_;  ///< padded input of the most recent forward()
  Shape cached_raw_shape_;  ///< unpadded input shape of that forward()
};

}  // namespace cdl
