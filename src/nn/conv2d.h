// Conv2D: 2-D convolution over CHW tensors with optional zero padding and
// stride (defaults reproduce the paper's valid / stride-1 convolution).
//
// This is the convolution used by LeNet-style networks: each output map is
// the sum over input channels of a KxK correlation plus a per-map bias.
#pragma once

#include "nn/layer.h"

namespace cdl {

/// Forward-pass implementation strategy. Both produce identical results
/// (within float rounding); kIm2col lowers the convolution to one GEMM,
/// which is faster for larger maps at the cost of a temporary column matrix.
/// Strided convolutions always use the direct path.
enum class ConvAlgo { kDirect, kIm2col };

/// Spatial geometry: symmetric zero padding and stride. Output extent is
/// floor((H + 2*padding - K) / stride) + 1.
struct ConvGeometry {
  std::size_t stride = 1;
  std::size_t padding = 0;
};

class Conv2D final : public Layer {
 public:
  /// `kernel` is the square kernel side K.
  Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         ConvAlgo algo = ConvAlgo::kDirect, ConvGeometry geometry = {});

  Tensor forward(const Tensor& input) override;
  [[nodiscard]] Tensor infer(const Tensor& input) const override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input_shape) const override;
  [[nodiscard]] OpCount forward_ops(const Shape& input_shape) const override;
  [[nodiscard]] std::string name() const override;

  std::vector<Tensor*> parameters() override { return {&weights_, &bias_}; }
  std::vector<Tensor*> gradients() override { return {&grad_weights_, &grad_bias_}; }
  void init(Rng& rng) override;

  [[nodiscard]] std::size_t in_channels() const { return in_channels_; }
  [[nodiscard]] std::size_t out_channels() const { return out_channels_; }
  [[nodiscard]] std::size_t kernel() const { return kernel_; }
  [[nodiscard]] const ConvGeometry& geometry() const { return geometry_; }

  [[nodiscard]] const Tensor& weights() const { return weights_; }
  [[nodiscard]] const Tensor& bias() const { return bias_; }

  [[nodiscard]] ConvAlgo algo() const { return algo_; }
  void set_algo(ConvAlgo algo) { algo_ = algo; }

 private:
  void check_input(const Shape& s) const;
  /// Writes the zero-padded input into `padded` (resized; storage reused).
  void pad_into(const Tensor& input, Tensor& padded) const;
  [[nodiscard]] Tensor forward_direct(const Tensor& padded) const;
  /// `cols` is the im2col scratch: the member buffer on the training path,
  /// a thread-local buffer on the infer path.
  [[nodiscard]] Tensor forward_im2col(const Tensor& padded, Tensor& cols) const;

  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_;
  ConvAlgo algo_;
  ConvGeometry geometry_;

  Tensor weights_;       ///< (out_c, in_c, K, K)
  Tensor bias_;          ///< (out_c)
  Tensor grad_weights_;  ///< accumulated d-loss/d-weights
  Tensor grad_bias_;
  Tensor cached_input_;  ///< padded input of the most recent forward()
  Shape cached_raw_shape_;  ///< unpadded input shape of that forward()
  Tensor cols_scratch_;  ///< im2col buffer reused across forward() calls
};

}  // namespace cdl
