// Quantized (u8 x s8 -> s32) packed GEMM for the INT8 cascade path.
//
// Row-major C(m,n) = A(m,k) * B(k,n) where A holds signed 8-bit weights and
// B holds unsigned 8-bit activations; C accumulates in int32. Operands are
// packed into micro-kernel panels once (weights at quantization time,
// activations per block), then a register-tiled 4x8 kernel runs over k in
// groups of 4 — the shape `vpmaddubsw`+`vpmaddwd` (AVX2) and `vpdpbusd`
// (AVX-512 VNNI) consume natively. Dispatch follows the conv2d.cpp pattern:
// raw intrinsics selected once via __builtin_cpu_supports, with a scalar
// reference tier that is also forced by CDL_FORCE_SCALAR=1.
//
// Exactness contract: integer arithmetic has no rounding, so all tiers
// produce bit-identical C provided the AVX2 tier's intermediate s16 pair
// sums cannot saturate. Callers must keep |A| <= kQgemmWeightMax (= 63):
// 2 * 255 * 63 = 32130 < 32767, so `vpmaddubsw` never clips and every tier
// equals the plain int32 reference for any B in [0, 255].
#pragma once

#include <cstddef>
#include <cstdint>

namespace cdl {

class ThreadPool;

struct QgemmDims {
  std::size_t m = 0;
  std::size_t k = 0;
  std::size_t n = 0;
};

/// Micro-kernel tile extents: A row panels are kQgemmMr tall, B column
/// panels kQgemmNr wide, and k is consumed in groups of kQgemmKGroup bytes
/// (zero-padded), matching the 4-way byte dot products of the SIMD tiers.
inline constexpr std::size_t kQgemmMr = 4;
inline constexpr std::size_t kQgemmNr = 8;
inline constexpr std::size_t kQgemmKGroup = 4;

/// Largest |weight| the packed-A operand may hold without breaking the
/// cross-tier exactness contract (see header comment).
inline constexpr std::int32_t kQgemmWeightMax = 63;

/// k rounded up to a whole number of kQgemmKGroup groups.
[[nodiscard]] std::size_t qgemm_padded_k(std::size_t k);

/// Bytes needed for a packed A(m,k) / packed B(k,n) operand.
[[nodiscard]] std::size_t qgemm_packed_a_bytes(std::size_t m, std::size_t k);
[[nodiscard]] std::size_t qgemm_packed_b_bytes(std::size_t k, std::size_t n);

/// Packs row-major A(m,k) into kQgemmMr-tall row panels: panel groups hold
/// kQgemmKGroup consecutive k bytes per row (so one row's group reads as a
/// single int32 broadcast), zero-padded past row m and depth k.
void qgemm_pack_a(std::size_t m, std::size_t k, const std::int8_t* a,
                  std::int8_t* pa);

/// Packs row-major B(k,n) into kQgemmNr-wide column panels: each k group
/// stores kQgemmKGroup bytes per column for kQgemmNr columns (32 bytes = one
/// 256-bit load), zero-padded past column n and depth k.
void qgemm_pack_b(std::size_t k, std::size_t n, const std::uint8_t* b,
                  std::uint8_t* pb);

/// Packs B = src^T where `src` is row-major (n,k) — the layout quantized
/// feature blocks are stored in, so batched "X * W^T" products need no
/// materialized transpose.
void qgemm_pack_b_transposed(std::size_t k, std::size_t n,
                             const std::uint8_t* src, std::uint8_t* pb);

/// Fused im2col + pack for quantized conv inputs: emits packed-B column
/// panels [panel_begin, panel_end) for the lowered patch matrix of `count`
/// CHW u8 images (stride 1, no padding). Column i*out_pixels + p is image
/// i's receptive field for output pixel p; depth index (ic*kernel + ky) *
/// kernel + kx matches the Conv2D weight tap order. Panel ranges touch
/// disjoint output bytes, so ranges can be packed concurrently.
void qgemm_pack_b_im2col(const std::uint8_t* images, std::size_t count,
                         std::size_t c, std::size_t h, std::size_t w,
                         std::size_t kernel, std::uint8_t* pb,
                         std::size_t panel_begin, std::size_t panel_end);

enum class QgemmTier : std::uint8_t { kScalar = 0, kAvx2 = 1, kAvx512Vnni = 2 };
[[nodiscard]] const char* to_string(QgemmTier tier);

/// The tier qgemm_packed() dispatches to on this machine — resolved once on
/// first use from __builtin_cpu_supports, or pinned to kScalar when the
/// CDL_FORCE_SCALAR environment variable is set to a non-empty value other
/// than "0" at first call.
[[nodiscard]] QgemmTier qgemm_tier();

/// C(m,n) = A*B over pre-packed operands (overwrite semantics, s32
/// accumulation). Work splits over *column* panels when `pool` has more than
/// one worker; integer accumulation is exact, so results are bit-identical
/// for any pool size and any tier (given the packed-A weight bound).
void qgemm_packed(QgemmDims dims, const std::int8_t* pa,
                  const std::uint8_t* pb, std::int32_t* c,
                  ThreadPool* pool = nullptr);

/// Scalar reference kernel over the same packed operands — always available
/// regardless of dispatch, used by the exact-arithmetic kernel tests and the
/// micro_kernels bench baseline.
void qgemm_packed_reference(QgemmDims dims, const std::int8_t* pa,
                            const std::uint8_t* pb, std::int32_t* c);

/// Convenience pack-and-multiply over unpacked row-major operands
/// (thread_local packing scratch; tests and benches only — the hot path
/// keeps operands packed in planner arenas).
void qgemm(QgemmDims dims, const std::int8_t* a, const std::uint8_t* b,
           std::int32_t* c);

}  // namespace cdl
