#include "nn/qconv_direct.h"

#include <cstdlib>

#include "nn/qgemm.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define CDL_QCONV_AVX2 1
#include <immintrin.h>
#endif

namespace cdl {

namespace {

/// Register budget for the tap set: with <= 32 taps the packed pair weights
/// fit a small stack array and the per-block inner loop stays unrolled-ish;
/// larger tap sets amortize im2col + GEMM better anyway (stage-1 convs).
constexpr std::size_t kMaxDirectTaps = 32;

void qconv_scalar(const std::uint8_t* image, std::size_t c, std::size_t h,
                  std::size_t w, std::size_t kernel,
                  const std::int8_t* weights, std::size_t out_c,
                  std::int32_t* out) {
  const std::size_t oh = h - kernel + 1;
  const std::size_t ow = w - kernel + 1;
  const std::size_t wsz = c * kernel * kernel;
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    const std::int8_t* wrow = weights + oc * wsz;
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        std::int32_t acc = 0;
        const std::int8_t* wp = wrow;
        for (std::size_t ic = 0; ic < c; ++ic) {
          for (std::size_t ky = 0; ky < kernel; ++ky) {
            const std::uint8_t* irow = image + (ic * h + y + ky) * w + x;
            for (std::size_t kx = 0; kx < kernel; ++kx) {
              acc += static_cast<std::int32_t>(*wp++) *
                     static_cast<std::int32_t>(irow[kx]);
            }
          }
        }
        out[(oc * oh + y) * ow + x] = acc;
      }
    }
  }
}

#ifdef CDL_QCONV_AVX2

/// 8 output pixels per step: each (ic, ky, kx-pair) contributes one
/// vpmaddubsw of interleaved pixel pairs against a broadcast (w[kx],
/// w[kx+1]) byte pair, widened to s32 and accumulated. The interleave
/// (unpacklo of the row at +kx and +kx+1) puts pixel j's pair at byte
/// 2j/2j+1, so lane j of the widened product is exactly
/// w[kx]*img[x+j+kx] + w[kx+1]*img[x+j+kx+1]. Odd kernels pair the last
/// tap with a zero byte vector (no load past +kernel-1). s16 pair sums
/// stay below 2*255*63 < 32767 under the kQgemmWeightMax bound, so nothing
/// saturates and the result equals the scalar reference bit for bit.
__attribute__((target("avx2"))) void qconv_avx2(const std::uint8_t* image,
                                                std::size_t c, std::size_t h,
                                                std::size_t w,
                                                std::size_t kernel,
                                                const std::int8_t* weights,
                                                std::size_t out_c,
                                                std::int32_t* out) {
  const std::size_t oh = h - kernel + 1;
  const std::size_t ow = w - kernel + 1;
  const std::size_t wsz = c * kernel * kernel;
  const __m128i zero8 = _mm_setzero_si128();
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    // Pre-broadcast the tap pairs for this output map once per map.
    __m128i wpair[kMaxDirectTaps];
    {
      const std::int8_t* wrow = weights + oc * wsz;
      std::size_t p = 0;
      for (std::size_t t = 0; t < c * kernel; ++t) {
        const std::int8_t* wk = wrow + t * kernel;
        for (std::size_t kx = 0; kx < kernel; kx += 2) {
          const std::uint8_t lo = static_cast<std::uint8_t>(wk[kx]);
          const std::uint8_t hi =
              kx + 1 < kernel ? static_cast<std::uint8_t>(wk[kx + 1]) : 0;
          wpair[p++] = _mm_set1_epi16(
              static_cast<short>(static_cast<std::uint16_t>(lo) |
                                 (static_cast<std::uint16_t>(hi) << 8)));
        }
      }
    }
    for (std::size_t y = 0; y < oh; ++y) {
      std::int32_t* orow = out + (oc * oh + y) * ow;
      std::size_t x = 0;
      bool tail_done = false;
      while (!tail_done) {
        if (x + 8 > ow) {
          // Overlapped tail block: integer results are position-independent,
          // so recomputing pixels [ow-8, ow) is an idempotent overwrite.
          x = ow - 8;
          tail_done = true;
        }
        __m256i acc = _mm256_setzero_si256();
        const __m128i* wp = wpair;
        for (std::size_t ic = 0; ic < c; ++ic) {
          for (std::size_t ky = 0; ky < kernel; ++ky) {
            const std::uint8_t* irow = image + (ic * h + y + ky) * w + x;
            for (std::size_t kx = 0; kx < kernel; kx += 2) {
              const __m128i a = _mm_loadu_si128(
                  reinterpret_cast<const __m128i*>(irow + kx));
              const __m128i b =
                  kx + 1 < kernel
                      ? _mm_loadu_si128(
                            reinterpret_cast<const __m128i*>(irow + kx + 1))
                      : zero8;
              const __m128i pr = _mm_unpacklo_epi8(a, b);
              const __m128i prod = _mm_maddubs_epi16(pr, *wp++);
              acc = _mm256_add_epi32(acc, _mm256_cvtepi16_epi32(prod));
            }
          }
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(orow + x), acc);
        if (!tail_done) {
          x += 8;
          if (x == ow) tail_done = true;
        }
      }
    }
  }
}

#endif  // CDL_QCONV_AVX2

using QconvFn = void (*)(const std::uint8_t*, std::size_t, std::size_t,
                         std::size_t, std::size_t, const std::int8_t*,
                         std::size_t, std::int32_t*);

struct QconvKernel {
  QconvFn fn;
  const char* tier;
};

/// Same contract as the conv/qgemm kill switch.
bool qconv_force_scalar_env() {
  const char* value = std::getenv("CDL_FORCE_SCALAR");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

QconvKernel select_qconv() {
  if (!qconv_force_scalar_env()) {
#ifdef CDL_QCONV_AVX2
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx2")) return {qconv_avx2, "avx2-maddubs"};
#endif
  }
  return {qconv_scalar, "scalar"};
}

const QconvKernel& qconv_kernel() {
  static const QconvKernel kernel = select_qconv();
  return kernel;
}

}  // namespace

bool qconv_direct_supported(std::size_t c, std::size_t kernel,
                            std::size_t ow) {
  return c > 0 && kernel > 0 && c * kernel * kernel <= kMaxDirectTaps &&
         ow >= 8;
}

const char* qconv_dispatch_tier() { return qconv_kernel().tier; }

bool qconv_direct_profitable(std::size_t taps) {
  // Measured on the paper shapes (Release, single image): against an AVX2
  // or scalar GEMM the direct walk always wins (same arithmetic, no pack).
  // Against an AVX-512-VNNI GEMM (vpdpbusd: 4 MACs/lane/instruction, twice
  // the maddubs rate) the pack amortizes — 3x3 c=1 still wins ~1.2x, but
  // 5x5 c=1 (25 taps) loses ~2.2x — so keep only tiny tap sets direct.
  if (qgemm_tier() != QgemmTier::kAvx512Vnni) return true;
  return taps <= 9;
}

void qconv_direct(const std::uint8_t* image, std::size_t c, std::size_t h,
                  std::size_t w, std::size_t kernel,
                  const std::int8_t* weights, std::size_t out_c,
                  std::int32_t* out) {
  qconv_kernel().fn(image, c, h, w, kernel, weights, out_c, out);
}

void qconv_direct_reference(const std::uint8_t* image, std::size_t c,
                            std::size_t h, std::size_t w, std::size_t kernel,
                            const std::int8_t* weights, std::size_t out_c,
                            std::int32_t* out) {
  qconv_scalar(image, c, h, w, kernel, weights, out_c, out);
}

}  // namespace cdl
