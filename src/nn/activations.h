// Elementwise activation layers: Sigmoid, Tanh, ReLU.
//
// Sigmoid is the paper's activation (the baseline networks follow Palm's
// convolutional-backprop formulation); Tanh and ReLU are provided for the
// ablation benches and as general library features.
//
// Sigmoid and Tanh evaluate the nn/act_kernels polynomial approximation
// (max abs error vs the std::exp form bounded by kSigmoidMaxAbsError /
// kTanhMaxAbsError) in *every* entry point — apply(), map(), forward() and
// infer() — so training and evaluation see bit-identical activations, and
// the bulk map()'s vector lanes match apply() element for element.
#pragma once

#include "nn/layer.h"

namespace cdl {

/// Common machinery for stateless elementwise activations. Derivatives are
/// expressed in terms of the cached forward *output*, which covers sigmoid,
/// tanh, and relu without retaining the input.
class ElementwiseActivation : public Layer {
 public:
  Tensor forward(const Tensor& input) final;
  [[nodiscard]] Tensor infer(const Tensor& input) const final;
  /// Elementwise over the whole block (in-place safe: `out` may equal `in`).
  void infer_block(const Shape& in_shape, const float* in, float* out,
                   std::size_t count, float* scratch,
                   ThreadPool* pool) const final;
  Tensor backward(const Tensor& grad_output) final;
  [[nodiscard]] Shape output_shape(const Shape& input_shape) const final {
    return input_shape;
  }
  [[nodiscard]] OpCount forward_ops(const Shape& input_shape) const final;

  /// True when the map is monotone non-decreasing over floats, which lets
  /// the batched executor commute it past max-pooling bit-exactly (the
  /// pooled maximum of activated values equals the activation of the pooled
  /// raw maximum). Sigmoid, tanh and relu all qualify.
  [[nodiscard]] virtual bool monotone_nondecreasing() const { return false; }

  /// Public entry to the scalar map (apply() is protected).
  [[nodiscard]] float evaluate_one(float x) const { return apply(x); }

  /// Bulk map: out[i] = apply(in[i]) for i in [0, n), in-place safe. The
  /// base implementation is the scalar loop; Sigmoid/Tanh/ReLU override it
  /// with the vectorized nn/act_kernels maps, whose lanes perform exactly
  /// the per-element operations of apply() — so map() and apply() agree
  /// bitwise for any n and any split of a range across calls.
  virtual void map(const float* in, float* out, std::size_t n) const;

 protected:
  [[nodiscard]] virtual float apply(float x) const = 0;
  /// Derivative dy/dx expressed as a function of the output y.
  [[nodiscard]] virtual float derivative_from_output(float y) const = 0;

 private:
  Tensor cached_output_;
};

class Sigmoid final : public ElementwiseActivation {
 public:
  [[nodiscard]] bool monotone_nondecreasing() const override { return true; }
  [[nodiscard]] std::string name() const override { return "sigmoid"; }
  void map(const float* in, float* out, std::size_t n) const override;

 protected:
  [[nodiscard]] float apply(float x) const override;
  [[nodiscard]] float derivative_from_output(float y) const override {
    return y * (1.0F - y);
  }
};

class Tanh final : public ElementwiseActivation {
 public:
  [[nodiscard]] bool monotone_nondecreasing() const override { return true; }
  [[nodiscard]] std::string name() const override { return "tanh"; }
  void map(const float* in, float* out, std::size_t n) const override;

 protected:
  [[nodiscard]] float apply(float x) const override;
  [[nodiscard]] float derivative_from_output(float y) const override {
    return 1.0F - y * y;
  }
};

class ReLU final : public ElementwiseActivation {
 public:
  [[nodiscard]] bool monotone_nondecreasing() const override { return true; }
  [[nodiscard]] std::string name() const override { return "relu"; }
  void map(const float* in, float* out, std::size_t n) const override;

 protected:
  [[nodiscard]] float apply(float x) const override { return x > 0.0F ? x : 0.0F; }
  [[nodiscard]] float derivative_from_output(float y) const override {
    return y > 0.0F ? 1.0F : 0.0F;
  }
};

}  // namespace cdl
