#include "nn/conv2d.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "core/thread_pool.h"
#include "core/workspace.h"

// Runtime-dispatched direct-convolution kernels. Unlike the GEMM
// micro-kernels, these cannot use the target_clones/auto-vectorizer scheme:
// GCC lowers both generic vector extensions and the would-be-vectorized
// loops against the *default* target before the per-clone target is applied,
// so the "v3 clone" ends up as scalar shuffle soup. Instead the wide path is
// written directly in AVX2/FMA intrinsics inside a target("avx2,fma")
// function and selected once at first use via __builtin_cpu_supports; other
// ISAs (and pre-AVX2 x86) run the portable scalar kernels.
#if defined(__x86_64__) && defined(__GNUC__)
#define CDL_CONV_AVX2 1
#include <immintrin.h>
#endif

namespace {

/// One output row of TWO output maps, stride-1 valid convolution over a
/// padded (c, ph, pw) image. Accumulators start at zero and taps run in
/// (ic, ky, kx) order with the bias added last — the exact per-element
/// operation sequence of the im2col GEMM lowering this kernel replaces, so
/// results stay consistent across the forward/infer/batched entry points.
/// Pairing two maps halves the input loads per multiply; pixels are the
/// vector axis so every lane does useful work even for 6-map networks
/// (the 4x8 GEMM tile wastes a quarter of its lanes at m = 6 and pays the
/// full im2col + packing traffic on top).
void conv_row2_generic(const float* in, std::size_t c, std::size_t ph,
                       std::size_t pw, std::size_t kernel, const float* w0,
                       const float* w1, float b0, float b1, std::size_t y,
                       std::size_t ow, float* o0, float* o1) {
  for (std::size_t x = 0; x < ow; ++x) {
    float a0 = 0.0F;
    float a1 = 0.0F;
    const float* p0 = w0;
    const float* p1 = w1;
    for (std::size_t ic = 0; ic < c; ++ic) {
      for (std::size_t ky = 0; ky < kernel; ++ky) {
        const float* irow = in + (ic * ph + y + ky) * pw + x;
        for (std::size_t kx = 0; kx < kernel; ++kx) {
          a0 += *p0++ * irow[kx];
          a1 += *p1++ * irow[kx];
        }
      }
    }
    o0[x] = a0 + b0;
    o1[x] = a1 + b1;
  }
}

/// Single-map variant of conv_row2_generic for the odd remainder channel.
void conv_row1_generic(const float* in, std::size_t c, std::size_t ph,
                       std::size_t pw, std::size_t kernel, const float* w0,
                       float b0, std::size_t y, std::size_t ow, float* o0) {
  for (std::size_t x = 0; x < ow; ++x) {
    float a0 = 0.0F;
    const float* p0 = w0;
    for (std::size_t ic = 0; ic < c; ++ic) {
      for (std::size_t ky = 0; ky < kernel; ++ky) {
        const float* irow = in + (ic * ph + y + ky) * pw + x;
        for (std::size_t kx = 0; kx < kernel; ++kx) {
          a0 += *p0++ * irow[kx];
        }
      }
    }
    o0[x] = a0 + b0;
  }
}

#ifdef CDL_CONV_AVX2

/// AVX2/FMA conv_row2: 16- then 8-pixel tiles, one FMA chain per
/// (map, tile) pair so the four YMM accumulators stay register-resident for
/// the whole tap loop; each input tile load is shared by both maps. The
/// per-element operation sequence (zero init, fmadd per tap in (ic, ky, kx)
/// order, bias added last) matches the scalar tail and the generic kernel
/// up to FMA contraction.
__attribute__((target("avx2,fma"))) void conv_row2_avx2(
    const float* in, std::size_t c, std::size_t ph, std::size_t pw,
    std::size_t kernel, const float* w0, const float* w1, float b0, float b1,
    std::size_t y, std::size_t ow, float* o0, float* o1) {
  std::size_t x = 0;
  for (; x + 16 <= ow; x += 16) {
    __m256 a00 = _mm256_setzero_ps();
    __m256 a01 = _mm256_setzero_ps();
    __m256 a10 = _mm256_setzero_ps();
    __m256 a11 = _mm256_setzero_ps();
    const float* p0 = w0;
    const float* p1 = w1;
    for (std::size_t ic = 0; ic < c; ++ic) {
      for (std::size_t ky = 0; ky < kernel; ++ky) {
        const float* irow = in + (ic * ph + y + ky) * pw + x;
        for (std::size_t kx = 0; kx < kernel; ++kx) {
          const __m256 s0 = _mm256_loadu_ps(irow + kx);
          const __m256 s1 = _mm256_loadu_ps(irow + kx + 8);
          const __m256 v0 = _mm256_set1_ps(*p0++);
          const __m256 v1 = _mm256_set1_ps(*p1++);
          a00 = _mm256_fmadd_ps(v0, s0, a00);
          a01 = _mm256_fmadd_ps(v0, s1, a01);
          a10 = _mm256_fmadd_ps(v1, s0, a10);
          a11 = _mm256_fmadd_ps(v1, s1, a11);
        }
      }
    }
    const __m256 vb0 = _mm256_set1_ps(b0);
    const __m256 vb1 = _mm256_set1_ps(b1);
    _mm256_storeu_ps(o0 + x, _mm256_add_ps(a00, vb0));
    _mm256_storeu_ps(o0 + x + 8, _mm256_add_ps(a01, vb0));
    _mm256_storeu_ps(o1 + x, _mm256_add_ps(a10, vb1));
    _mm256_storeu_ps(o1 + x + 8, _mm256_add_ps(a11, vb1));
  }
  for (; x + 8 <= ow; x += 8) {
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    const float* p0 = w0;
    const float* p1 = w1;
    for (std::size_t ic = 0; ic < c; ++ic) {
      for (std::size_t ky = 0; ky < kernel; ++ky) {
        const float* irow = in + (ic * ph + y + ky) * pw + x;
        for (std::size_t kx = 0; kx < kernel; ++kx) {
          const __m256 s = _mm256_loadu_ps(irow + kx);
          a0 = _mm256_fmadd_ps(_mm256_set1_ps(*p0++), s, a0);
          a1 = _mm256_fmadd_ps(_mm256_set1_ps(*p1++), s, a1);
        }
      }
    }
    _mm256_storeu_ps(o0 + x, _mm256_add_ps(a0, _mm256_set1_ps(b0)));
    _mm256_storeu_ps(o1 + x, _mm256_add_ps(a1, _mm256_set1_ps(b1)));
  }
  if (x < ow) {
    // The x offset is additive in the row address, so shifting the input
    // base re-anchors the generic kernel at pixel column x.
    conv_row2_generic(in + x, c, ph, pw, kernel, w0, w1, b0, b1, y, ow - x,
                      o0 + x, o1 + x);
  }
}

/// AVX2/FMA conv_row1 for the odd remainder channel.
__attribute__((target("avx2,fma"))) void conv_row1_avx2(
    const float* in, std::size_t c, std::size_t ph, std::size_t pw,
    std::size_t kernel, const float* w0, float b0, std::size_t y,
    std::size_t ow, float* o0) {
  std::size_t x = 0;
  for (; x + 16 <= ow; x += 16) {
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    const float* p0 = w0;
    for (std::size_t ic = 0; ic < c; ++ic) {
      for (std::size_t ky = 0; ky < kernel; ++ky) {
        const float* irow = in + (ic * ph + y + ky) * pw + x;
        for (std::size_t kx = 0; kx < kernel; ++kx) {
          const __m256 v0 = _mm256_set1_ps(*p0++);
          a0 = _mm256_fmadd_ps(v0, _mm256_loadu_ps(irow + kx), a0);
          a1 = _mm256_fmadd_ps(v0, _mm256_loadu_ps(irow + kx + 8), a1);
        }
      }
    }
    const __m256 vb0 = _mm256_set1_ps(b0);
    _mm256_storeu_ps(o0 + x, _mm256_add_ps(a0, vb0));
    _mm256_storeu_ps(o0 + x + 8, _mm256_add_ps(a1, vb0));
  }
  for (; x + 8 <= ow; x += 8) {
    __m256 a0 = _mm256_setzero_ps();
    const float* p0 = w0;
    for (std::size_t ic = 0; ic < c; ++ic) {
      for (std::size_t ky = 0; ky < kernel; ++ky) {
        const float* irow = in + (ic * ph + y + ky) * pw + x;
        for (std::size_t kx = 0; kx < kernel; ++kx) {
          a0 = _mm256_fmadd_ps(_mm256_set1_ps(*p0++), _mm256_loadu_ps(irow + kx),
                               a0);
        }
      }
    }
    _mm256_storeu_ps(o0 + x, _mm256_add_ps(a0, _mm256_set1_ps(b0)));
  }
  if (x < ow) {
    conv_row1_generic(in + x, c, ph, pw, kernel, w0, b0, y, ow - x, o0 + x);
  }
}

#endif  // CDL_CONV_AVX2

using Row2Fn = void (*)(const float*, std::size_t, std::size_t, std::size_t,
                        std::size_t, const float*, const float*, float, float,
                        std::size_t, std::size_t, float*, float*);
using Row1Fn = void (*)(const float*, std::size_t, std::size_t, std::size_t,
                        std::size_t, const float*, float, std::size_t,
                        std::size_t, float*);

struct RowKernels {
  Row2Fn row2;
  Row1Fn row1;
  const char* tier;
};

/// Same contract as the int8 GEMM's kill switch (nn/qgemm.cpp): any
/// non-empty value other than "0" pins the scalar kernels.
bool conv_force_scalar_env() {
  const char* value = std::getenv("CDL_FORCE_SCALAR");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

RowKernels select_row_kernels() {
  if (conv_force_scalar_env()) {
    return {conv_row2_generic, conv_row1_generic, "scalar"};
  }
#ifdef CDL_CONV_AVX2
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return {conv_row2_avx2, conv_row1_avx2, "avx2-fma"};
  }
#endif
  return {conv_row2_generic, conv_row1_generic, "scalar"};
}

/// Kernel pair for this machine, selected on first use (one branch per
/// lowered_into call, hoisted out of the row loops).
const RowKernels& row_kernels() {
  static const RowKernels kernels = select_row_kernels();
  return kernels;
}

}  // namespace

namespace cdl {

const char* conv_dispatch_tier() { return row_kernels().tier; }

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, ConvAlgo algo, ConvGeometry geometry)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      algo_(algo),
      geometry_(geometry),
      weights_(Shape{out_channels, in_channels, kernel, kernel}),
      bias_(Shape{out_channels}),
      grad_weights_(weights_.shape()),
      grad_bias_(bias_.shape()) {
  if (in_channels == 0 || out_channels == 0 || kernel == 0) {
    throw std::invalid_argument("Conv2D: channels and kernel must be positive");
  }
  if (geometry.stride == 0) {
    throw std::invalid_argument("Conv2D: stride must be positive");
  }
  if (geometry.padding >= kernel) {
    throw std::invalid_argument("Conv2D: padding must be < kernel");
  }
}

void Conv2D::check_input(const Shape& s) const {
  const std::size_t pad2 = 2 * geometry_.padding;
  if (s.rank() != 3 || s[0] != in_channels_ || s[1] + pad2 < kernel_ ||
      s[2] + pad2 < kernel_) {
    throw std::invalid_argument("Conv2D(" + name() + "): bad input shape " +
                                s.to_string());
  }
}

Shape Conv2D::output_shape(const Shape& input_shape) const {
  check_input(input_shape);
  const std::size_t pad2 = 2 * geometry_.padding;
  return Shape{out_channels_,
               (input_shape[1] + pad2 - kernel_) / geometry_.stride + 1,
               (input_shape[2] + pad2 - kernel_) / geometry_.stride + 1};
}

void Conv2D::init(Rng& rng) {
  // LeCun-style fan-in scaled uniform initialization.
  const float fan_in =
      static_cast<float>(in_channels_ * kernel_ * kernel_);
  const float bound = std::sqrt(6.0F / fan_in) * 0.5F;
  for (float& w : weights_.values()) w = rng.uniform(-bound, bound);
  bias_.zero();
  grad_weights_.zero();
  grad_bias_.zero();
}

void Conv2D::pad_into(const Tensor& input, Tensor& padded) const {
  const std::size_t p = geometry_.padding;
  const std::size_t h = input.shape()[1];
  const std::size_t w = input.shape()[2];
  padded.resize(Shape{in_channels_, h + 2 * p, w + 2 * p});
  pad_image(input.data(), h, w, padded.data());
}

void Conv2D::pad_image(const float* img, std::size_t h, std::size_t w,
                       float* padded) const {
  const std::size_t p = geometry_.padding;
  const std::size_t ph = h + 2 * p;
  const std::size_t pw = w + 2 * p;
  std::memset(padded, 0, in_channels_ * ph * pw * sizeof(float));
  for (std::size_t c = 0; c < in_channels_; ++c) {
    for (std::size_t y = 0; y < h; ++y) {
      const float* src = img + (c * h + y) * w;
      float* dst = padded + (c * ph + y + p) * pw + p;
      for (std::size_t x = 0; x < w; ++x) dst[x] = src[x];
    }
  }
}

Tensor Conv2D::forward(const Tensor& input) {
  check_input(input.shape());
  cached_raw_shape_ = input.shape();
  if (geometry_.padding == 0) {
    cached_input_ = input;
  } else {
    pad_into(input, cached_input_);
  }
  // The vectorized kernel assumes stride 1; strided convs use the scalar
  // direct path.
  return block_lowered() ? forward_lowered(cached_input_)
                         : forward_direct(cached_input_);
}

Tensor Conv2D::infer(const Tensor& input) const {
  check_input(input.shape());
  // Per-thread scratch shared by every Conv2D instance: batched inference
  // runs many samples per worker, so the steady state performs no padded
  // allocations at all.
  thread_local Tensor padded;
  const Tensor* x = &input;
  if (geometry_.padding != 0) {
    pad_into(input, padded);
    x = &padded;
  }
  return block_lowered() ? forward_lowered(*x) : forward_direct(*x);
}

Tensor Conv2D::forward_direct(const Tensor& padded) const {
  const std::size_t h = padded.shape()[1];
  const std::size_t w = padded.shape()[2];
  const std::size_t stride = geometry_.stride;
  Tensor out(Shape{out_channels_, (h - kernel_) / stride + 1,
                   (w - kernel_) / stride + 1});
  direct_into(padded.data(), h, w, out.data());
  return out;
}

void Conv2D::direct_into(const float* padded, std::size_t h, std::size_t w,
                         float* out) const {
  const std::size_t stride = geometry_.stride;
  const std::size_t oh = (h - kernel_) / stride + 1;
  const std::size_t ow = (w - kernel_) / stride + 1;
  for (std::size_t oc = 0; oc < out_channels_; ++oc) {
    const float b = bias_[oc];
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        float acc = b;
        for (std::size_t ic = 0; ic < in_channels_; ++ic) {
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            const float* in_row =
                padded + (ic * h + (y * stride + ky)) * w + x * stride;
            const float* w_row =
                weights_.data() +
                ((oc * in_channels_ + ic) * kernel_ + ky) * kernel_;
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              acc += in_row[kx] * w_row[kx];
            }
          }
        }
        out[(oc * oh + y) * ow + x] = acc;
      }
    }
  }
}

void Conv2D::lowered_into(const float* padded, std::size_t h, std::size_t w,
                          float* out, std::size_t out_ch_stride) const {
  const std::size_t oh = h - kernel_ + 1;
  const std::size_t ow = w - kernel_ + 1;
  const std::size_t wsz = in_channels_ * kernel_ * kernel_;
  const RowKernels& kern = row_kernels();
  std::size_t oc = 0;
  for (; oc + 2 <= out_channels_; oc += 2) {
    const float* w0 = weights_.data() + oc * wsz;
    const float* w1 = w0 + wsz;
    float* o0 = out + oc * out_ch_stride;
    float* o1 = o0 + out_ch_stride;
    for (std::size_t y = 0; y < oh; ++y) {
      kern.row2(padded, in_channels_, h, w, kernel_, w0, w1, bias_[oc],
                bias_[oc + 1], y, ow, o0 + y * ow, o1 + y * ow);
    }
  }
  if (oc < out_channels_) {
    const float* w0 = weights_.data() + oc * wsz;
    float* o0 = out + oc * out_ch_stride;
    for (std::size_t y = 0; y < oh; ++y) {
      kern.row1(padded, in_channels_, h, w, kernel_, w0, bias_[oc], y, ow,
                o0 + y * ow);
    }
  }
}

Tensor Conv2D::forward_lowered(const Tensor& padded) const {
  const std::size_t h = padded.shape()[1];
  const std::size_t w = padded.shape()[2];
  const std::size_t oh = h - kernel_ + 1;
  const std::size_t ow = w - kernel_ + 1;
  Tensor out(Shape{out_channels_, oh, ow});
  lowered_into(padded.data(), h, w, out.data(), oh * ow);
  return out;
}

std::size_t Conv2D::interleaved_scratch_floats(const Shape& in_shape,
                                               std::size_t count,
                                               std::size_t workers) const {
  (void)workers;
  check_input(in_shape);
  // The direct kernel reads the (padded) input in place, so the only scratch
  // is the zero-padded copy of the tile when the conv pads.
  if (geometry_.padding == 0) return 0;
  const std::size_t pad2 = 2 * geometry_.padding;
  return align_floats(count * in_channels_ * (in_shape[1] + pad2) *
                      (in_shape[2] + pad2));
}

void Conv2D::infer_block_interleaved(const Shape& in_shape, const float* in,
                                     std::size_t count, float* raw_out,
                                     float* scratch, ThreadPool* pool) const {
  if (!block_lowered()) {
    throw std::logic_error(
        "Conv2D::infer_block_interleaved requires im2col / stride 1");
  }
  check_input(in_shape);
  const std::size_t pad2 = 2 * geometry_.padding;
  const std::size_t h = in_shape[1];
  const std::size_t w = in_shape[2];
  const std::size_t ph = h + pad2;
  const std::size_t pw = w + pad2;
  const std::size_t padded_floats = in_channels_ * ph * pw;
  const std::size_t pixels = (ph - kernel_ + 1) * (pw - kernel_ + 1);
  const bool threaded = pool != nullptr && pool->size() > 1;

  const float* src = in;
  if (geometry_.padding != 0) {
    float* padded = scratch;
    struct PadCtx {
      const Conv2D* conv;
      const float* in;
      float* padded;
      std::size_t in_floats, padded_floats, h, w;
    } ctx{this, in, padded, in_shape.numel(), padded_floats, h, w};
    const auto run = [&ctx](std::size_t, std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        ctx.conv->pad_image(ctx.in + i * ctx.in_floats, ctx.h, ctx.w,
                            ctx.padded + i * ctx.padded_floats);
      }
    };
    if (threaded) {
      pool->parallel_for(0, count, run);
    } else {
      run(0, 0, count);
    }
    src = padded;
  }
  // One direct-kernel call per image, each writing its pixel columns of
  // every channel row. Images are the parallel axis — a far coarser grain
  // than the GEMM column panels this replaces.
  struct ConvCtx {
    const Conv2D* conv;
    const float* src;
    float* raw_out;
    std::size_t padded_floats, ph, pw, pixels, ch_stride;
  } ctx{this, src, raw_out, padded_floats, ph, pw, pixels, count * pixels};
  const auto run = [&ctx](std::size_t, std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      ctx.conv->lowered_into(ctx.src + i * ctx.padded_floats, ctx.ph, ctx.pw,
                             ctx.raw_out + i * ctx.pixels, ctx.ch_stride);
    }
  };
  if (threaded) {
    pool->parallel_for(0, count, run);
  } else {
    run(0, 0, count);
  }
}

void Conv2D::conv_image(const float* img, std::size_t h, std::size_t w,
                        float* out, float* pad_scratch) const {
  if (!block_lowered()) {
    throw std::logic_error("Conv2D::conv_image requires im2col / stride 1");
  }
  const std::size_t pad2 = 2 * geometry_.padding;
  const float* src = img;
  if (geometry_.padding != 0) {
    pad_image(img, h, w, pad_scratch);
    src = pad_scratch;
  }
  const std::size_t ph = h + pad2;
  const std::size_t pw = w + pad2;
  lowered_into(src, ph, pw, out, (ph - kernel_ + 1) * (pw - kernel_ + 1));
}

std::size_t Conv2D::infer_block_scratch_floats(const Shape& in_shape,
                                               std::size_t count,
                                               std::size_t workers) const {
  check_input(in_shape);
  (void)count;
  // Both the vectorized and the scalar per-image paths write straight into
  // the caller's output block; scratch is one padded image per worker.
  if (geometry_.padding == 0) return 0;
  const std::size_t pad2 = 2 * geometry_.padding;
  return workers * align_floats(in_channels_ * (in_shape[1] + pad2) *
                                (in_shape[2] + pad2));
}

void Conv2D::infer_block(const Shape& in_shape, const float* in, float* out,
                         std::size_t count, float* scratch,
                         ThreadPool* pool) const {
  check_input(in_shape);
  // Output geometry computed arithmetically: output_shape() builds a Shape,
  // which would heap-allocate on the steady-state path.
  const std::size_t pad2 = 2 * geometry_.padding;
  const std::size_t pixels =
      ((in_shape[1] + pad2 - kernel_) / geometry_.stride + 1) *
      ((in_shape[2] + pad2 - kernel_) / geometry_.stride + 1);
  const std::size_t out_floats = out_channels_ * pixels;
  const bool threaded = pool != nullptr && pool->size() > 1;
  // One image at a time with a per-worker padded buffer; block_lowered()
  // convs use the vectorized stride-1 kernel (the same one infer() and the
  // fused interleaved path run, so all entry points agree bit-exactly),
  // everything else the scalar direct loops.
  struct Ctx {
    const Conv2D* conv;
    const float* in;
    float* out;
    float* scratch;
    std::size_t in_floats, out_floats, pixels, h, w, padded_floats;
    bool pad, lowered;
  } ctx{this,
        in,
        out,
        scratch,
        in_shape.numel(),
        out_floats,
        pixels,
        in_shape[1],
        in_shape[2],
        align_floats(in_channels_ * (in_shape[1] + pad2) *
                     (in_shape[2] + pad2)),
        geometry_.padding != 0,
        block_lowered()};
  const auto run = [&ctx](std::size_t worker, std::size_t b, std::size_t e) {
    float* padded =
        ctx.pad ? ctx.scratch + worker * ctx.padded_floats : nullptr;
    const std::size_t p2 = 2 * ctx.conv->geometry_.padding;
    for (std::size_t i = b; i < e; ++i) {
      const float* img = ctx.in + i * ctx.in_floats;
      float* dst = ctx.out + i * ctx.out_floats;
      if (ctx.pad) {
        ctx.conv->pad_image(img, ctx.h, ctx.w, padded);
        img = padded;
      }
      if (ctx.lowered) {
        ctx.conv->lowered_into(img, ctx.h + p2, ctx.w + p2, dst, ctx.pixels);
      } else {
        ctx.conv->direct_into(img, ctx.h + p2, ctx.w + p2, dst);
      }
    }
  };
  if (threaded) {
    pool->parallel_for(0, count, run);
  } else {
    run(0, 0, count);
  }
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("Conv2D::backward called before forward");
  }
  const Shape out_shape = output_shape(cached_raw_shape_);
  if (grad_output.shape() != out_shape) {
    throw std::invalid_argument("Conv2D::backward: grad shape " +
                                grad_output.shape().to_string() +
                                " != " + out_shape.to_string());
  }
  const std::size_t h = cached_input_.shape()[1];
  const std::size_t w = cached_input_.shape()[2];
  const std::size_t stride = geometry_.stride;
  const std::size_t oh = out_shape[1];
  const std::size_t ow = out_shape[2];

  Tensor grad_padded(cached_input_.shape());
  for (std::size_t oc = 0; oc < out_channels_; ++oc) {
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        const float g = grad_output.at(oc, y, x);
        if (g == 0.0F) continue;
        grad_bias_[oc] += g;
        for (std::size_t ic = 0; ic < in_channels_; ++ic) {
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            const float* in_row = cached_input_.data() +
                                  (ic * h + (y * stride + ky)) * w + x * stride;
            float* gin_row = grad_padded.data() +
                             (ic * h + (y * stride + ky)) * w + x * stride;
            const std::size_t wbase =
                ((oc * in_channels_ + ic) * kernel_ + ky) * kernel_;
            const float* w_row = weights_.data() + wbase;
            float* gw_row = grad_weights_.data() + wbase;
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              gw_row[kx] += g * in_row[kx];
              gin_row[kx] += g * w_row[kx];
            }
          }
        }
      }
    }
  }

  // Crop the padding ring off the input gradient.
  const std::size_t p = geometry_.padding;
  if (p == 0) return grad_padded;
  Tensor grad_input(cached_raw_shape_);
  const std::size_t rh = cached_raw_shape_[1];
  const std::size_t rw = cached_raw_shape_[2];
  for (std::size_t c = 0; c < in_channels_; ++c) {
    for (std::size_t y = 0; y < rh; ++y) {
      const float* src = grad_padded.data() + (c * h + y + p) * w + p;
      float* dst = grad_input.data() + (c * rh + y) * rw;
      for (std::size_t x = 0; x < rw; ++x) dst[x] = src[x];
    }
  }
  return grad_input;
}

OpCount Conv2D::forward_ops(const Shape& input_shape) const {
  const Shape out = output_shape(input_shape);
  const std::size_t out_px = out[1] * out[2];
  OpCount ops;
  ops.macs = static_cast<std::uint64_t>(out_channels_ * out_px) * in_channels_ *
             kernel_ * kernel_;
  ops.adds = out_channels_ * out_px;  // bias adds
  // Each MAC reads one input word and one weight word; each output is written
  // once. This deliberately ignores caching/reuse: it is the same "all
  // operands fetched" accounting an RTL datapath without operand reuse makes
  // (padded zeros count as fetches too — a real datapath skips them, but at
  // the paper's padding-free geometries the two agree exactly).
  ops.mem_reads = 2 * ops.macs + out_channels_ /* bias */;
  ops.mem_writes = out_channels_ * out_px;
  return ops;
}

std::string Conv2D::name() const {
  std::string n = "conv" + std::to_string(kernel_) + "x" +
                  std::to_string(kernel_) + "x" + std::to_string(out_channels_);
  if (geometry_.stride != 1) {
    n += 's';
    n += std::to_string(geometry_.stride);
  }
  if (geometry_.padding != 0) {
    n += 'p';
    n += std::to_string(geometry_.padding);
  }
  return n;
}

}  // namespace cdl
