#include "nn/conv2d.h"

#include <cmath>
#include <stdexcept>

#include "nn/gemm.h"
#include "nn/im2col.h"

namespace cdl {

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, ConvAlgo algo, ConvGeometry geometry)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      algo_(algo),
      geometry_(geometry),
      weights_(Shape{out_channels, in_channels, kernel, kernel}),
      bias_(Shape{out_channels}),
      grad_weights_(weights_.shape()),
      grad_bias_(bias_.shape()) {
  if (in_channels == 0 || out_channels == 0 || kernel == 0) {
    throw std::invalid_argument("Conv2D: channels and kernel must be positive");
  }
  if (geometry.stride == 0) {
    throw std::invalid_argument("Conv2D: stride must be positive");
  }
  if (geometry.padding >= kernel) {
    throw std::invalid_argument("Conv2D: padding must be < kernel");
  }
}

void Conv2D::check_input(const Shape& s) const {
  const std::size_t pad2 = 2 * geometry_.padding;
  if (s.rank() != 3 || s[0] != in_channels_ || s[1] + pad2 < kernel_ ||
      s[2] + pad2 < kernel_) {
    throw std::invalid_argument("Conv2D(" + name() + "): bad input shape " +
                                s.to_string());
  }
}

Shape Conv2D::output_shape(const Shape& input_shape) const {
  check_input(input_shape);
  const std::size_t pad2 = 2 * geometry_.padding;
  return Shape{out_channels_,
               (input_shape[1] + pad2 - kernel_) / geometry_.stride + 1,
               (input_shape[2] + pad2 - kernel_) / geometry_.stride + 1};
}

void Conv2D::init(Rng& rng) {
  // LeCun-style fan-in scaled uniform initialization.
  const float fan_in =
      static_cast<float>(in_channels_ * kernel_ * kernel_);
  const float bound = std::sqrt(6.0F / fan_in) * 0.5F;
  for (float& w : weights_.values()) w = rng.uniform(-bound, bound);
  bias_.zero();
  grad_weights_.zero();
  grad_bias_.zero();
}

void Conv2D::pad_into(const Tensor& input, Tensor& padded) const {
  const std::size_t p = geometry_.padding;
  const std::size_t h = input.shape()[1];
  const std::size_t w = input.shape()[2];
  padded.resize(Shape{in_channels_, h + 2 * p, w + 2 * p});
  padded.zero();
  for (std::size_t c = 0; c < in_channels_; ++c) {
    for (std::size_t y = 0; y < h; ++y) {
      const float* src = input.data() + (c * h + y) * w;
      float* dst =
          padded.data() + (c * (h + 2 * p) + y + p) * (w + 2 * p) + p;
      for (std::size_t x = 0; x < w; ++x) dst[x] = src[x];
    }
  }
}

Tensor Conv2D::forward(const Tensor& input) {
  check_input(input.shape());
  cached_raw_shape_ = input.shape();
  if (geometry_.padding == 0) {
    cached_input_ = input;
  } else {
    pad_into(input, cached_input_);
  }
  // The im2col lowering assumes stride 1; strided convs use the direct path.
  const bool lowered = algo_ == ConvAlgo::kIm2col && geometry_.stride == 1;
  return lowered ? forward_im2col(cached_input_, cols_scratch_)
                 : forward_direct(cached_input_);
}

Tensor Conv2D::infer(const Tensor& input) const {
  check_input(input.shape());
  // Per-thread scratch shared by every Conv2D instance: batched inference
  // runs many samples per worker, so the steady state performs no padded /
  // im2col allocations at all.
  thread_local Tensor padded;
  thread_local Tensor cols;
  const Tensor* x = &input;
  if (geometry_.padding != 0) {
    pad_into(input, padded);
    x = &padded;
  }
  const bool lowered = algo_ == ConvAlgo::kIm2col && geometry_.stride == 1;
  return lowered ? forward_im2col(*x, cols) : forward_direct(*x);
}

Tensor Conv2D::forward_direct(const Tensor& padded) const {
  const std::size_t h = padded.shape()[1];
  const std::size_t w = padded.shape()[2];
  const std::size_t stride = geometry_.stride;
  const std::size_t oh = (h - kernel_) / stride + 1;
  const std::size_t ow = (w - kernel_) / stride + 1;

  Tensor out(Shape{out_channels_, oh, ow});
  for (std::size_t oc = 0; oc < out_channels_; ++oc) {
    const float b = bias_[oc];
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        float acc = b;
        for (std::size_t ic = 0; ic < in_channels_; ++ic) {
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            const float* in_row =
                padded.data() + (ic * h + (y * stride + ky)) * w + x * stride;
            const float* w_row =
                weights_.data() +
                ((oc * in_channels_ + ic) * kernel_ + ky) * kernel_;
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              acc += in_row[kx] * w_row[kx];
            }
          }
        }
        out.at(oc, y, x) = acc;
      }
    }
  }
  return out;
}

Tensor Conv2D::forward_im2col(const Tensor& padded, Tensor& cols) const {
  const std::size_t oh = padded.shape()[1] - kernel_ + 1;
  const std::size_t ow = padded.shape()[2] - kernel_ + 1;
  const std::size_t pixels = oh * ow;
  const std::size_t patch = in_channels_ * kernel_ * kernel_;

  im2col_into(padded, kernel_, cols);
  // (out_c, patch) x (patch, pixels): weights are already laid out so each
  // output map's kernel flattens to one contiguous row.
  Tensor out(Shape{out_channels_, oh, ow});
  sgemm({out_channels_, patch, pixels}, weights_.data(), cols.data(),
        out.data());
  for (std::size_t oc = 0; oc < out_channels_; ++oc) {
    const float b = bias_[oc];
    float* row = out.data() + oc * pixels;
    for (std::size_t p = 0; p < pixels; ++p) row[p] += b;
  }
  return out;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("Conv2D::backward called before forward");
  }
  const Shape out_shape = output_shape(cached_raw_shape_);
  if (grad_output.shape() != out_shape) {
    throw std::invalid_argument("Conv2D::backward: grad shape " +
                                grad_output.shape().to_string() +
                                " != " + out_shape.to_string());
  }
  const std::size_t h = cached_input_.shape()[1];
  const std::size_t w = cached_input_.shape()[2];
  const std::size_t stride = geometry_.stride;
  const std::size_t oh = out_shape[1];
  const std::size_t ow = out_shape[2];

  Tensor grad_padded(cached_input_.shape());
  for (std::size_t oc = 0; oc < out_channels_; ++oc) {
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        const float g = grad_output.at(oc, y, x);
        if (g == 0.0F) continue;
        grad_bias_[oc] += g;
        for (std::size_t ic = 0; ic < in_channels_; ++ic) {
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            const float* in_row = cached_input_.data() +
                                  (ic * h + (y * stride + ky)) * w + x * stride;
            float* gin_row = grad_padded.data() +
                             (ic * h + (y * stride + ky)) * w + x * stride;
            const std::size_t wbase =
                ((oc * in_channels_ + ic) * kernel_ + ky) * kernel_;
            const float* w_row = weights_.data() + wbase;
            float* gw_row = grad_weights_.data() + wbase;
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              gw_row[kx] += g * in_row[kx];
              gin_row[kx] += g * w_row[kx];
            }
          }
        }
      }
    }
  }

  // Crop the padding ring off the input gradient.
  const std::size_t p = geometry_.padding;
  if (p == 0) return grad_padded;
  Tensor grad_input(cached_raw_shape_);
  const std::size_t rh = cached_raw_shape_[1];
  const std::size_t rw = cached_raw_shape_[2];
  for (std::size_t c = 0; c < in_channels_; ++c) {
    for (std::size_t y = 0; y < rh; ++y) {
      const float* src = grad_padded.data() + (c * h + y + p) * w + p;
      float* dst = grad_input.data() + (c * rh + y) * rw;
      for (std::size_t x = 0; x < rw; ++x) dst[x] = src[x];
    }
  }
  return grad_input;
}

OpCount Conv2D::forward_ops(const Shape& input_shape) const {
  const Shape out = output_shape(input_shape);
  const std::size_t out_px = out[1] * out[2];
  OpCount ops;
  ops.macs = static_cast<std::uint64_t>(out_channels_ * out_px) * in_channels_ *
             kernel_ * kernel_;
  ops.adds = out_channels_ * out_px;  // bias adds
  // Each MAC reads one input word and one weight word; each output is written
  // once. This deliberately ignores caching/reuse: it is the same "all
  // operands fetched" accounting an RTL datapath without operand reuse makes
  // (padded zeros count as fetches too — a real datapath skips them, but at
  // the paper's padding-free geometries the two agree exactly).
  ops.mem_reads = 2 * ops.macs + out_channels_ /* bias */;
  ops.mem_writes = out_channels_ * out_px;
  return ops;
}

std::string Conv2D::name() const {
  std::string n = "conv" + std::to_string(kernel_) + "x" +
                  std::to_string(kernel_) + "x" + std::to_string(out_channels_);
  if (geometry_.stride != 1) {
    n += 's';
    n += std::to_string(geometry_.stride);
  }
  if (geometry_.padding != 0) {
    n += 'p';
    n += std::to_string(geometry_.padding);
  }
  return n;
}

}  // namespace cdl
