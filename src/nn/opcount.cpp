#include "nn/opcount.h"

#include <sstream>

namespace cdl {

std::string OpCount::to_string() const {
  std::ostringstream os;
  os << "{macs=" << macs << ", adds=" << adds << ", compares=" << compares
     << ", activations=" << activations << ", divides=" << divides
     << ", mem_reads=" << mem_reads << ", mem_writes=" << mem_writes
     << ", total_compute=" << total_compute() << "}";
  return os.str();
}

}  // namespace cdl
