// Layer: abstract interface for all trainable and stateless network layers.
//
// The library trains per-sample (stochastic gradient descent with momentum),
// which matches the scale of the paper's LeNet-style networks and keeps the
// layer contract simple: forward() caches whatever backward() needs, and
// backward() accumulates parameter gradients and returns the gradient with
// respect to the layer input.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/tensor.h"
#include "nn/opcount.h"

namespace cdl {

class ThreadPool;

class Layer {
 public:
  virtual ~Layer() = default;

  /// Runs the layer on one sample and caches state for backward().
  virtual Tensor forward(const Tensor& input) = 0;

  /// Inference-only forward: arithmetic identical to forward() (bit-exact),
  /// but const — no state is cached, so backward() cannot follow. Must be
  /// safe to call concurrently from many threads on one layer instance
  /// (parameters are shared read-only; any scratch is per-thread). This is
  /// the path the batched inference driver executes.
  [[nodiscard]] virtual Tensor infer(const Tensor& input) const = 0;

  // --- batched (block) inference -------------------------------------------
  // The stage-resident batch engine runs whole sub-batches through one layer
  // at a time. Samples are stored sample-major and contiguous: `in` holds
  // count x in_shape.numel() floats, `out` receives count x out_numel.

  /// Scratch floats infer_block() needs for `count` samples when up to
  /// `workers` pool workers may run concurrently (0 and 1 are equivalent).
  [[nodiscard]] virtual std::size_t infer_block_scratch_floats(
      const Shape& in_shape, std::size_t count, std::size_t workers) const {
    (void)in_shape;
    (void)count;
    (void)workers;
    return 0;
  }

  /// Batched inference over `count` contiguous samples. Every sample's
  /// result is bit-identical to a per-sample infer() for any count, worker
  /// count, and scratch placement; `scratch` must provide at least
  /// infer_block_scratch_floats() floats. The base implementation falls
  /// back to per-sample infer() (and therefore allocates); layers on the
  /// batched hot path override it with allocation-free block kernels.
  virtual void infer_block(const Shape& in_shape, const float* in, float* out,
                           std::size_t count, float* scratch,
                           ThreadPool* pool) const;

  /// Propagates `grad_output` (d-loss / d-output) backwards. Accumulates
  /// parameter gradients internally and returns d-loss / d-input.
  /// Must be preceded by a forward() on the same sample.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Output shape produced for a given input shape; throws on mismatch.
  [[nodiscard]] virtual Shape output_shape(const Shape& input_shape) const = 0;

  /// Operation cost of one forward pass on an input of the given shape.
  [[nodiscard]] virtual OpCount forward_ops(const Shape& input_shape) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Trainable parameters and their gradient buffers (parallel vectors;
  /// both empty for stateless layers).
  virtual std::vector<Tensor*> parameters() { return {}; }
  virtual std::vector<Tensor*> gradients() { return {}; }

  /// (Re-)initializes parameters; default no-op for stateless layers.
  virtual void init(Rng& rng) { (void)rng; }

  /// Zeroes accumulated parameter gradients.
  void zero_gradients() {
    for (Tensor* g : gradients()) g->zero();
  }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace cdl
