#include "nn/pool2d.h"

#include <stdexcept>

namespace cdl {

Pool2D::Pool2D(std::size_t window, PoolMode mode)
    : window_(window), mode_(mode) {
  if (window == 0) throw std::invalid_argument("Pool2D: window must be positive");
}

void Pool2D::check_input(const Shape& s) const {
  if (s.rank() != 3 || s[1] % window_ != 0 || s[2] % window_ != 0) {
    throw std::invalid_argument("Pool2D(window=" + std::to_string(window_) +
                                "): bad input shape " + s.to_string());
  }
}

Shape Pool2D::output_shape(const Shape& input_shape) const {
  check_input(input_shape);
  return Shape{input_shape[0], input_shape[1] / window_,
               input_shape[2] / window_};
}

Tensor Pool2D::forward(const Tensor& input) {
  check_input(input.shape());
  cached_input_shape_ = input.shape();
  const std::size_t c = input.shape()[0];
  const std::size_t h = input.shape()[1];
  const std::size_t w = input.shape()[2];
  const std::size_t oh = h / window_;
  const std::size_t ow = w / window_;

  Tensor out(Shape{c, oh, ow});
  if (mode_ == PoolMode::kMax) argmax_.assign(c * oh * ow, 0);

  const float inv_area =
      1.0F / static_cast<float>(window_ * window_);
  for (std::size_t ch = 0; ch < c; ++ch) {
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        if (mode_ == PoolMode::kMax) {
          float best = input.at(ch, y * window_, x * window_);
          std::size_t best_idx = (ch * h + y * window_) * w + x * window_;
          for (std::size_t dy = 0; dy < window_; ++dy) {
            for (std::size_t dx = 0; dx < window_; ++dx) {
              const std::size_t iy = y * window_ + dy;
              const std::size_t ix = x * window_ + dx;
              const float v = input.at(ch, iy, ix);
              if (v > best) {
                best = v;
                best_idx = (ch * h + iy) * w + ix;
              }
            }
          }
          out.at(ch, y, x) = best;
          argmax_[(ch * oh + y) * ow + x] = best_idx;
        } else {
          float acc = 0.0F;
          for (std::size_t dy = 0; dy < window_; ++dy) {
            for (std::size_t dx = 0; dx < window_; ++dx) {
              acc += input.at(ch, y * window_ + dy, x * window_ + dx);
            }
          }
          out.at(ch, y, x) = acc * inv_area;
        }
      }
    }
  }
  return out;
}

Tensor Pool2D::infer(const Tensor& input) const {
  check_input(input.shape());
  const std::size_t c = input.shape()[0];
  const std::size_t h = input.shape()[1];
  const std::size_t w = input.shape()[2];
  const std::size_t oh = h / window_;
  const std::size_t ow = w / window_;

  Tensor out(Shape{c, oh, ow});
  const float inv_area = 1.0F / static_cast<float>(window_ * window_);
  for (std::size_t ch = 0; ch < c; ++ch) {
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        if (mode_ == PoolMode::kMax) {
          float best = input.at(ch, y * window_, x * window_);
          for (std::size_t dy = 0; dy < window_; ++dy) {
            for (std::size_t dx = 0; dx < window_; ++dx) {
              const float v =
                  input.at(ch, y * window_ + dy, x * window_ + dx);
              if (v > best) best = v;
            }
          }
          out.at(ch, y, x) = best;
        } else {
          float acc = 0.0F;
          for (std::size_t dy = 0; dy < window_; ++dy) {
            for (std::size_t dx = 0; dx < window_; ++dx) {
              acc += input.at(ch, y * window_ + dy, x * window_ + dx);
            }
          }
          out.at(ch, y, x) = acc * inv_area;
        }
      }
    }
  }
  return out;
}

Tensor Pool2D::backward(const Tensor& grad_output) {
  if (cached_input_shape_.rank() == 0) {
    throw std::logic_error("Pool2D::backward called before forward");
  }
  const Shape out_shape = output_shape(cached_input_shape_);
  if (grad_output.shape() != out_shape) {
    throw std::invalid_argument("Pool2D::backward: grad shape " +
                                grad_output.shape().to_string() +
                                " != " + out_shape.to_string());
  }

  Tensor grad_input(cached_input_shape_);
  const std::size_t c = out_shape[0];
  const std::size_t oh = out_shape[1];
  const std::size_t ow = out_shape[2];
  const float inv_area = 1.0F / static_cast<float>(window_ * window_);

  for (std::size_t ch = 0; ch < c; ++ch) {
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        const float g = grad_output.at(ch, y, x);
        if (mode_ == PoolMode::kMax) {
          grad_input[argmax_[(ch * oh + y) * ow + x]] += g;
        } else {
          for (std::size_t dy = 0; dy < window_; ++dy) {
            for (std::size_t dx = 0; dx < window_; ++dx) {
              grad_input.at(ch, y * window_ + dy, x * window_ + dx) +=
                  g * inv_area;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

OpCount Pool2D::forward_ops(const Shape& input_shape) const {
  const Shape out = output_shape(input_shape);
  const std::uint64_t out_px = out[0] * out[1] * out[2];
  const std::uint64_t win = window_ * window_;
  OpCount ops;
  if (mode_ == PoolMode::kMax) {
    ops.compares = out_px * (win - 1);
  } else {
    ops.adds = out_px * (win - 1);
    ops.divides = out_px;
  }
  ops.mem_reads = out_px * win;
  ops.mem_writes = out_px;
  return ops;
}

std::string Pool2D::name() const {
  return (mode_ == PoolMode::kMax ? "maxpool" : "avgpool") +
         std::to_string(window_) + "x" + std::to_string(window_);
}

}  // namespace cdl
