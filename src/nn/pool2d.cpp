#include "nn/pool2d.h"

#include <stdexcept>

#include "core/thread_pool.h"

// Same runtime-dispatch scheme as the GEMM / conv kernels: GCC emits an AVX2
// clone of the pooling loop next to the baseline one and selects at load
// time. Max is compare-only, so every clone is bit-identical by construction.
#if defined(__x86_64__) && defined(__ELF__) && defined(__GNUC__) && \
    !defined(__clang__)
#define CDL_POOL_TARGET_CLONES \
  __attribute__((target_clones("arch=x86-64-v3", "default")))
#else
#define CDL_POOL_TARGET_CLONES
#endif

namespace {

/// 2x2 max-pool of one (h, w) plane. Each output pixel is the data-parallel
/// rewrite of the sequential scan the generic loop performs — the ternary
/// chain visits the window in the same (dy, dx) order, so ties and NaNs
/// resolve identically while the x loop vectorizes.
CDL_POOL_TARGET_CLONES
void max_pool2_plane(const float* __restrict plane, std::size_t w,
                     std::size_t oh, std::size_t ow, float* __restrict out) {
  for (std::size_t y = 0; y < oh; ++y) {
    const float* r0 = plane + (2 * y) * w;
    const float* r1 = r0 + w;
    float* orow = out + y * ow;
    for (std::size_t x = 0; x < ow; ++x) {
      const float a = r0[2 * x];
      const float b = r0[2 * x + 1];
      const float c = r1[2 * x];
      const float d = r1[2 * x + 1];
      float m = b > a ? b : a;
      m = c > m ? c : m;
      m = d > m ? d : m;
      orow[x] = m;
    }
  }
}

}  // namespace

namespace cdl {

Pool2D::Pool2D(std::size_t window, PoolMode mode)
    : window_(window), mode_(mode) {
  if (window == 0) throw std::invalid_argument("Pool2D: window must be positive");
}

void Pool2D::check_input(const Shape& s) const {
  if (s.rank() != 3 || s[1] % window_ != 0 || s[2] % window_ != 0) {
    throw std::invalid_argument("Pool2D(window=" + std::to_string(window_) +
                                "): bad input shape " + s.to_string());
  }
}

Shape Pool2D::output_shape(const Shape& input_shape) const {
  check_input(input_shape);
  return Shape{input_shape[0], input_shape[1] / window_,
               input_shape[2] / window_};
}

Tensor Pool2D::forward(const Tensor& input) {
  check_input(input.shape());
  cached_input_shape_ = input.shape();
  const std::size_t c = input.shape()[0];
  const std::size_t h = input.shape()[1];
  const std::size_t w = input.shape()[2];
  const std::size_t oh = h / window_;
  const std::size_t ow = w / window_;

  Tensor out(Shape{c, oh, ow});
  if (mode_ == PoolMode::kMax) argmax_.assign(c * oh * ow, 0);

  const float inv_area =
      1.0F / static_cast<float>(window_ * window_);
  for (std::size_t ch = 0; ch < c; ++ch) {
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        if (mode_ == PoolMode::kMax) {
          float best = input.at(ch, y * window_, x * window_);
          std::size_t best_idx = (ch * h + y * window_) * w + x * window_;
          for (std::size_t dy = 0; dy < window_; ++dy) {
            for (std::size_t dx = 0; dx < window_; ++dx) {
              const std::size_t iy = y * window_ + dy;
              const std::size_t ix = x * window_ + dx;
              const float v = input.at(ch, iy, ix);
              if (v > best) {
                best = v;
                best_idx = (ch * h + iy) * w + ix;
              }
            }
          }
          out.at(ch, y, x) = best;
          argmax_[(ch * oh + y) * ow + x] = best_idx;
        } else {
          float acc = 0.0F;
          for (std::size_t dy = 0; dy < window_; ++dy) {
            for (std::size_t dx = 0; dx < window_; ++dx) {
              acc += input.at(ch, y * window_ + dy, x * window_ + dx);
            }
          }
          out.at(ch, y, x) = acc * inv_area;
        }
      }
    }
  }
  return out;
}

Tensor Pool2D::infer(const Tensor& input) const {
  check_input(input.shape());
  const Shape& s = input.shape();
  Tensor out(output_shape(s));
  pool_image(input.data(), s[1] * s[2], s[0], s[1], s[2], out.data());
  return out;
}

void Pool2D::pool_image(const float* in, std::size_t channel_stride,
                        std::size_t c, std::size_t h, std::size_t w,
                        float* out) const {
  const std::size_t oh = h / window_;
  const std::size_t ow = w / window_;
  if (mode_ == PoolMode::kMax && window_ == 2) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      max_pool2_plane(in + ch * channel_stride, w, oh, ow,
                      out + ch * oh * ow);
    }
    return;
  }
  const float inv_area = 1.0F / static_cast<float>(window_ * window_);
  for (std::size_t ch = 0; ch < c; ++ch) {
    const float* plane = in + ch * channel_stride;
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        if (mode_ == PoolMode::kMax) {
          float best = plane[y * window_ * w + x * window_];
          for (std::size_t dy = 0; dy < window_; ++dy) {
            for (std::size_t dx = 0; dx < window_; ++dx) {
              const float v =
                  plane[(y * window_ + dy) * w + x * window_ + dx];
              if (v > best) best = v;
            }
          }
          out[(ch * oh + y) * ow + x] = best;
        } else {
          float acc = 0.0F;
          for (std::size_t dy = 0; dy < window_; ++dy) {
            for (std::size_t dx = 0; dx < window_; ++dx) {
              acc += plane[(y * window_ + dy) * w + x * window_ + dx];
            }
          }
          out[(ch * oh + y) * ow + x] = acc * inv_area;
        }
      }
    }
  }
}

void Pool2D::infer_block(const Shape& in_shape, const float* in, float* out,
                         std::size_t count, float* scratch,
                         ThreadPool* pool) const {
  (void)scratch;
  check_input(in_shape);
  const std::size_t c = in_shape[0];
  const std::size_t h = in_shape[1];
  const std::size_t w = in_shape[2];
  struct Ctx {
    const Pool2D* pool;
    const float* in;
    float* out;
    std::size_t in_floats, out_floats, c, h, w;
  } ctx{this,          in, out, in_shape.numel(),
        c * (h / window_) * (w / window_), c,   h, w};
  const auto run = [&ctx](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      ctx.pool->pool_image(ctx.in + i * ctx.in_floats, ctx.h * ctx.w, ctx.c,
                           ctx.h, ctx.w, ctx.out + i * ctx.out_floats);
    }
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(0, count, run);
  } else {
    run(0, 0, count);
  }
}

Tensor Pool2D::backward(const Tensor& grad_output) {
  if (cached_input_shape_.rank() == 0) {
    throw std::logic_error("Pool2D::backward called before forward");
  }
  const Shape out_shape = output_shape(cached_input_shape_);
  if (grad_output.shape() != out_shape) {
    throw std::invalid_argument("Pool2D::backward: grad shape " +
                                grad_output.shape().to_string() +
                                " != " + out_shape.to_string());
  }

  Tensor grad_input(cached_input_shape_);
  const std::size_t c = out_shape[0];
  const std::size_t oh = out_shape[1];
  const std::size_t ow = out_shape[2];
  const float inv_area = 1.0F / static_cast<float>(window_ * window_);

  for (std::size_t ch = 0; ch < c; ++ch) {
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        const float g = grad_output.at(ch, y, x);
        if (mode_ == PoolMode::kMax) {
          grad_input[argmax_[(ch * oh + y) * ow + x]] += g;
        } else {
          for (std::size_t dy = 0; dy < window_; ++dy) {
            for (std::size_t dx = 0; dx < window_; ++dx) {
              grad_input.at(ch, y * window_ + dy, x * window_ + dx) +=
                  g * inv_area;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

OpCount Pool2D::forward_ops(const Shape& input_shape) const {
  const Shape out = output_shape(input_shape);
  const std::uint64_t out_px = out[0] * out[1] * out[2];
  const std::uint64_t win = window_ * window_;
  OpCount ops;
  if (mode_ == PoolMode::kMax) {
    ops.compares = out_px * (win - 1);
  } else {
    ops.adds = out_px * (win - 1);
    ops.divides = out_px;
  }
  ops.mem_reads = out_px * win;
  ops.mem_writes = out_px;
  return ops;
}

std::string Pool2D::name() const {
  return (mode_ == PoolMode::kMax ? "maxpool" : "avgpool") +
         std::to_string(window_) + "x" + std::to_string(window_);
}

}  // namespace cdl
