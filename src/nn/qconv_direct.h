// Direct (im2col-free) u8 x s8 -> s32 convolution for small-c_in first
// layers.
//
// The quantized cascade's stage-0 convs have c_in = 1 and tiny kernels, so
// the byte-im2col + packed-GEMM route spends more time materializing the
// patch matrix than multiplying it. This kernel convolves the CHW u8 image
// in place: the AVX2 tier processes 8 output pixels per step, consuming
// kernel taps in adjacent-kx pairs via vpmaddubsw (unsigned pixel x signed
// weight), widening to s32 per pair. All arithmetic is integer, so the
// scalar reference and the vector tier are bit-identical by construction —
// the same exactness argument as nn/qgemm.h, and the same weight bound
// applies: callers must keep |weights| <= kQgemmWeightMax (63) so the s16
// pair sums cannot saturate.
//
// Row tails are handled by re-running the last full 8-pixel block at
// x = ow - 8 (integer results are idempotent), which is why
// qconv_direct_supported requires ow >= 8. The pair loads read up to
// kQconvSlackBytes past the *buffer* end on the final row; callers must
// allocate input buffers with that much readable slack (the quantized
// cascade's u8 arenas do).
#pragma once

#include <cstddef>
#include <cstdint>

namespace cdl {

/// Readable bytes the AVX2 tier may touch past the end of the input image
/// buffer (tail-block pair loads on the last row).
inline constexpr std::size_t kQconvSlackBytes = 16;

/// True when (c, kernel, ow) fits the direct kernel: the whole tap set must
/// stay register-resident (c * kernel^2 <= 32 taps) and rows must carry at
/// least one full 8-pixel block. Callers keep the im2col + GEMM route
/// otherwise.
[[nodiscard]] bool qconv_direct_supported(std::size_t c, std::size_t kernel,
                                          std::size_t ow);

/// Tier qconv_direct dispatches to ("avx2-maddubs" or "scalar"), resolved
/// once at first use; CDL_FORCE_SCALAR pins the scalar tier.
[[nodiscard]] const char* qconv_dispatch_tier();

/// True when routing a supported shape through qconv_direct is expected to
/// beat byte-im2col + qgemm_packed on this CPU. Both routes produce the
/// same s32 accumulators bit for bit, so this is pure dispatch: without
/// VNNI the GEMM runs the same maddubs arithmetic as the direct kernel and
/// skipping the pack always wins; a VNNI GEMM doubles the per-instruction
/// MAC rate and amortizes the pack across output channels, so the
/// pack-free walk only wins while the tap set is tiny (measured crossover
/// between 9 and 25 taps on an AVX-512-VNNI host).
[[nodiscard]] bool qconv_direct_profitable(std::size_t taps);

/// Valid stride-1 convolution of one CHW u8 image (c, h, w) with row-major
/// s8 weights (out_c, c*kernel*kernel; taps in (ic, ky, kx) order — the
/// Conv2D / qgemm_pack_b_im2col tap order), writing the s32 output CHW
/// (out_c, oh, ow), oh = h-kernel+1, ow = w-kernel+1. No bias: the caller's
/// dequantize epilogue applies it, exactly like the GEMM route. Requires
/// qconv_direct_supported(c, kernel, ow) and kQconvSlackBytes of readable
/// slack after `image`'s buffer.
void qconv_direct(const std::uint8_t* image, std::size_t c, std::size_t h,
                  std::size_t w, std::size_t kernel,
                  const std::int8_t* weights, std::size_t out_c,
                  std::int32_t* out);

/// Portable scalar reference (plain s32 triple loop) — always available
/// regardless of dispatch; the kernel tests hold every tier to it.
void qconv_direct_reference(const std::uint8_t* image, std::size_t c,
                            std::size_t h, std::size_t w, std::size_t kernel,
                            const std::int8_t* weights, std::size_t out_c,
                            std::int32_t* out);

}  // namespace cdl
