// SGD optimizer with classical momentum and multiplicative learning-rate decay.
#pragma once

#include <vector>

#include "core/tensor.h"
#include "nn/network.h"

namespace cdl {

struct SgdConfig {
  float learning_rate = 0.1F;
  float momentum = 0.0F;
  /// Learning rate is multiplied by this factor at every end_epoch() call.
  float lr_decay = 1.0F;
};

class SgdOptimizer {
 public:
  explicit SgdOptimizer(SgdConfig config = {});

  /// Applies one update using accumulated gradients, then zeroes them.
  /// Velocity buffers are allocated lazily and keyed by position, so the same
  /// optimizer instance must always be stepped against the same network.
  void step(Network& net);

  /// Applies decay to the learning rate (call once per epoch).
  void end_epoch();

  [[nodiscard]] float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

 private:
  SgdConfig config_;
  float lr_;
  std::vector<Tensor> velocity_;
};

}  // namespace cdl
