// SGD optimizer with classical momentum and multiplicative learning-rate decay.
#pragma once

#include <cstddef>
#include <vector>

#include "core/tensor.h"
#include "nn/network.h"

namespace cdl {

struct SgdConfig {
  float learning_rate = 0.1F;
  float momentum = 0.0F;
  /// Learning rate is multiplied by this factor at every end_epoch() call.
  float lr_decay = 1.0F;
};

/// Per-parameter-tensor statistics of one optimizer step, computed inside
/// SgdOptimizer::step() when a GradStatsSink is attached and armed. All
/// accumulations run serially in element order with double precision, so the
/// values are bit-identical for any thread count and across repeated runs.
struct ParamStepStats {
  std::size_t param = 0;       ///< index in Network::parameters() order
  double grad_l2 = 0.0;        ///< L2 norm of the accumulated gradient
  double grad_max_abs = 0.0;
  double update_l2 = 0.0;      ///< L2 norm of the applied update (velocity)
  double update_max_abs = 0.0;
  double weight_l2 = 0.0;      ///< L2 norm of the post-update weights
  double weight_max_abs = 0.0;

  /// True when every statistic is finite (NaN/Inf anywhere poisons a norm).
  [[nodiscard]] bool finite() const;
};

/// Receiver for per-step parameter statistics. The optimizer consults
/// wants_stats() once per step; when it returns false the stats loops are
/// skipped entirely, so an attached-but-idle sink costs one virtual call per
/// step and an absent sink costs one pointer test.
class GradStatsSink {
 public:
  virtual ~GradStatsSink() = default;
  /// Called once per parameter tensor per recorded step, in parameter order.
  virtual void on_param_step(const ParamStepStats& stats) = 0;
  /// Gate evaluated at step() entry; default records every step.
  [[nodiscard]] virtual bool wants_stats() const { return true; }
};

class SgdOptimizer {
 public:
  explicit SgdOptimizer(SgdConfig config = {});

  /// Applies one update using accumulated gradients, then zeroes them.
  /// Velocity buffers are allocated lazily and keyed by position, so the same
  /// optimizer instance must always be stepped against the same network.
  void step(Network& net);

  /// Applies decay to the learning rate (call once per epoch).
  void end_epoch();

  [[nodiscard]] float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

  /// Attaches (or clears, with nullptr) the per-step statistics receiver.
  /// Not owned; must outlive the optimizer or be cleared before destruction.
  void set_stats_sink(GradStatsSink* sink) { sink_ = sink; }
  [[nodiscard]] GradStatsSink* stats_sink() const { return sink_; }

 private:
  SgdConfig config_;
  float lr_;
  std::vector<Tensor> velocity_;
  GradStatsSink* sink_ = nullptr;
};

}  // namespace cdl
