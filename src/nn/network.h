// Network: sequential container of layers with single-sample forward /
// backward and partial-range execution.
//
// Partial-range execution (forward_range) is the hook the CDL core builds
// on: a conditional network runs the baseline layers stage by stage, feeding
// each stage boundary's activations to that stage's linear classifier, and
// only continues into the next range if the activation module demands it.
#pragma once

#include <string>
#include <vector>

#include "nn/layer.h"

namespace cdl {

class ThreadPool;

class Network {
 public:
  Network() = default;

  // Layers are held by unique_ptr; the network is movable but not copyable.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  /// Appends a layer; returns its index.
  std::size_t add(LayerPtr layer);

  /// Constructs a layer in place; returns a reference to it.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  [[nodiscard]] std::size_t size() const { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_.at(i); }
  [[nodiscard]] const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  /// Full forward pass over all layers.
  [[nodiscard]] Tensor forward(const Tensor& input);

  /// Forward through layers [begin, end). `end` may equal size().
  [[nodiscard]] Tensor forward_range(const Tensor& input, std::size_t begin,
                                     std::size_t end);

  /// Inference-only forward (Layer::infer): bit-identical to forward() but
  /// const — caches nothing, so backward() cannot follow. Safe to call
  /// concurrently from many threads on one network instance.
  [[nodiscard]] Tensor infer(const Tensor& input) const;
  [[nodiscard]] Tensor infer_range(const Tensor& input, std::size_t begin,
                                   std::size_t end) const;

  /// Batched inference driver: runs infer() on every input, partitioning
  /// the batch across `pool` (static contiguous chunks; serial when `pool`
  /// is null or has one worker). Output i corresponds to input i, and every
  /// output is bit-identical to a serial infer() for any thread count.
  [[nodiscard]] std::vector<Tensor> forward_batch(
      const std::vector<Tensor>& inputs, ThreadPool* pool = nullptr) const;

  /// Backward through all layers (after a full forward); returns d-loss/d-input.
  Tensor backward(const Tensor& grad_output);

  /// All trainable parameters / gradients in layer order.
  [[nodiscard]] std::vector<Tensor*> parameters();
  [[nodiscard]] std::vector<Tensor*> gradients();
  void zero_gradients();

  void init(Rng& rng);

  /// Output shape after the whole network (or a prefix of `count` layers).
  [[nodiscard]] Shape output_shape(const Shape& input_shape) const;
  [[nodiscard]] Shape output_shape_after(const Shape& input_shape,
                                         std::size_t count) const;

  /// Per-layer forward op costs for the given input shape.
  [[nodiscard]] std::vector<OpCount> layer_ops(const Shape& input_shape) const;

  /// Total forward op cost.
  [[nodiscard]] OpCount forward_ops(const Shape& input_shape) const;

  /// Human-readable summary ("conv5x5x6 -> maxpool2x2 -> ...").
  [[nodiscard]] std::string summary() const;

 private:
  void check_range(std::size_t begin, std::size_t end) const;

  std::vector<LayerPtr> layers_;
};

}  // namespace cdl
