// Network: sequential container of layers with single-sample forward /
// backward and partial-range execution.
//
// Partial-range execution (forward_range) is the hook the CDL core builds
// on: a conditional network runs the baseline layers stage by stage, feeding
// each stage boundary's activations to that stage's linear classifier, and
// only continues into the next range if the activation module demands it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace cdl {

class ThreadPool;

/// One step of the stage-resident block executor: a single layer, or a fused
/// conv(im2col) -> monotone activation -> max-pool triple (span == 3).
struct BlockStep {
  std::size_t first = 0;  ///< index of the step's first layer
  std::size_t span = 1;   ///< layers consumed: 1, or 3 when fused
  Shape in_shape;         ///< per-sample input shape of the step
  Shape out_shape;        ///< per-sample output shape of the step
  Shape conv_out;         ///< raw convolution output shape (fused steps only)
  std::string name;       ///< layer name, "a+b+c" when fused
  /// Per-sample modeled cost (full op bundle; `ops` caches total_compute) of
  /// the step's layers, resolved at plan time so the profiled hot path never
  /// recomputes it. Follows the layer_ops() model — the fused activation is
  /// costed at the pre-pool shape even though execution applies it post-pool
  /// — keeping attribution rows bit-consistent with exit_ops() accounting.
  OpCount op_count;
  std::uint64_t ops = 0;
};

/// Precomputed execution plan for infer_block_range. Step decomposition,
/// fusion decisions, shapes and the scratch layout are all resolved once at
/// plan time so the per-tile hot path performs zero heap allocations (Shape
/// construction included). A plan sized for (count, workers) serves any
/// smaller tile and pool.
struct BlockPlan {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t count = 0;    ///< planned max samples per call
  std::size_t workers = 1;  ///< planned max pool size
  std::size_t in_floats = 0;
  std::size_t out_floats = 0;
  std::vector<BlockStep> steps;
  std::size_t ping_floats = 0;          ///< one inter-step buffer (aligned)
  std::size_t step_scratch_floats = 0;  ///< max scratch over all steps
  [[nodiscard]] std::size_t scratch_floats() const {
    return 2 * ping_floats + step_scratch_floats;
  }
};

class Network {
 public:
  Network() = default;

  // Layers are held by unique_ptr; the network is movable but not copyable.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  /// Appends a layer; returns its index.
  std::size_t add(LayerPtr layer);

  /// Constructs a layer in place; returns a reference to it.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  [[nodiscard]] std::size_t size() const { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_.at(i); }
  [[nodiscard]] const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  /// Full forward pass over all layers.
  [[nodiscard]] Tensor forward(const Tensor& input);

  /// Forward through layers [begin, end). `end` may equal size().
  [[nodiscard]] Tensor forward_range(const Tensor& input, std::size_t begin,
                                     std::size_t end);

  /// Inference-only forward (Layer::infer): bit-identical to forward() but
  /// const — caches nothing, so backward() cannot follow. Safe to call
  /// concurrently from many threads on one network instance.
  [[nodiscard]] Tensor infer(const Tensor& input) const;
  [[nodiscard]] Tensor infer_range(const Tensor& input, std::size_t begin,
                                   std::size_t end) const;

  /// Batched inference driver: equivalent to infer() on every input. Uniform
  /// batches run through the stage-resident block executor in tiles (one
  /// batched GEMM per conv/dense layer instead of one per image); mixed-shape
  /// batches fall back to per-image infer(). Either way output i is
  /// bit-identical to a serial infer(inputs[i]) for any thread count.
  [[nodiscard]] std::vector<Tensor> forward_batch(
      const std::vector<Tensor>& inputs, ThreadPool* pool = nullptr) const;

  /// Builds the execution plan for infer_block_range over layers
  /// [begin, end) with tiles of up to `count` samples and pools of up to
  /// `workers` threads.
  [[nodiscard]] BlockPlan plan_block_range(const Shape& in_shape,
                                           std::size_t begin, std::size_t end,
                                           std::size_t count,
                                           std::size_t workers) const;

  /// Plan-driven form of infer_block_range: `count` must not exceed
  /// plan.count nor the pool plan.workers. Performs no heap allocation.
  void infer_block_range(const BlockPlan& plan, const float* in, float* out,
                         std::size_t count, float* scratch,
                         ThreadPool* pool) const;

  /// Scratch floats needed by infer_block_range for `count` samples through
  /// layers [begin, end) with up to `workers` pool workers.
  [[nodiscard]] std::size_t infer_block_scratch_floats(
      const Shape& in_shape, std::size_t begin, std::size_t end,
      std::size_t count, std::size_t workers) const;

  /// Stage-resident batched inference through layers [begin, end): `in` holds
  /// `count` contiguous samples of `in_shape`, `out` receives the `count`
  /// outputs contiguously. Per-sample results are bit-identical to
  /// infer_range() for any count and thread count. Runs
  /// conv(im2col) -> monotone activation -> max-pool triples fused: the
  /// convolution of the whole block is one packed GEMM into an interleaved
  /// (out_c, count*pixels) buffer, pooling reads it directly, and the
  /// activation — which commutes with max bit-exactly when monotone — is
  /// applied to the (4x smaller) pooled block. `scratch` must hold
  /// infer_block_scratch_floats(); no heap allocation happens inside.
  void infer_block_range(const Shape& in_shape, const float* in, float* out,
                         std::size_t count, std::size_t begin, std::size_t end,
                         float* scratch, ThreadPool* pool) const;

  /// Backward through all layers (after a full forward); returns d-loss/d-input.
  Tensor backward(const Tensor& grad_output);

  /// All trainable parameters / gradients in layer order.
  [[nodiscard]] std::vector<Tensor*> parameters();
  [[nodiscard]] std::vector<Tensor*> gradients();
  void zero_gradients();

  /// Identity of each entry of parameters(): owning layer index/name plus a
  /// short parameter tag ("w"/"b" for the conventional weights-then-bias
  /// pair, "p<k>" otherwise). Parallel to parameters() — entry i describes
  /// parameters()[i]. Telemetry uses this to label per-tensor statistics.
  struct ParamInfo {
    std::size_t layer = 0;
    std::string layer_name;
    std::string param_name;
  };
  [[nodiscard]] std::vector<ParamInfo> parameter_info();

  void init(Rng& rng);

  /// Output shape after the whole network (or a prefix of `count` layers).
  [[nodiscard]] Shape output_shape(const Shape& input_shape) const;
  [[nodiscard]] Shape output_shape_after(const Shape& input_shape,
                                         std::size_t count) const;

  /// Per-layer forward op costs for the given input shape.
  [[nodiscard]] std::vector<OpCount> layer_ops(const Shape& input_shape) const;

  /// Total forward op cost.
  [[nodiscard]] OpCount forward_ops(const Shape& input_shape) const;

  /// Human-readable summary ("conv5x5x6 -> maxpool2x2 -> ...").
  [[nodiscard]] std::string summary() const;

 private:
  void check_range(std::size_t begin, std::size_t end) const;

  std::vector<LayerPtr> layers_;
};

}  // namespace cdl
