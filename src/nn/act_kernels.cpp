#include "nn/act_kernels.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

// Like nn/conv2d.cpp, the wide paths are written directly in intrinsics
// inside target("...") functions and selected once at first use: GCC lowers
// generic-vector / auto-vectorized code against the *default* target before
// per-clone targets apply, so target_clones cannot express these kernels.
#if defined(__x86_64__) && defined(__GNUC__)
#define CDL_ACT_SIMD 1
#include <immintrin.h>
#endif

namespace cdl {

namespace {

// --- scalar reference ------------------------------------------------------
//
// sigmoid(x) = 1 / (1 + exp(-x)) with exp evaluated as:
//   t  = -clamp(x, +/-kClampX)           (clamp keeps 2^n finite/normal)
//   n  = nearbyint(t * log2(e))          (round-to-nearest-even)
//   f  = t - n*ln2                       (Cody-Waite two-constant split)
//   p  = f + f^2 * P(f) + 1              (degree-5 minimax for e^f, P(0)=p5)
//   e  = p * 2^n                         (exponent-field integer add)
// Every step maps 1:1 onto a vector instruction with identical rounding
// (see the AVX2/AVX-512 lanes below), which is what makes the scalar form
// the *reference*, not merely an approximation of the vector form.
//
// |f| <= ln2/2, so p is in [0.7071, 1.4143) and its biased exponent is 126
// or 127; |n| <= round(87 * log2e) = 126, and p >= 1 whenever n = -126
// (f >= 0 there, since t >= -87 > -126*ln2), so the exponent add stays in
// [1, 253]: no overflow, no denormals, valid for plain integer arithmetic
// on the exponent field.

constexpr float kClampX = 87.0F;
constexpr float kLog2e = 1.44269504088896341F;
// ln2 = 0.693359375 - 2.12194440e-4 (cephes split: hi exact in 11 bits).
constexpr float kNegLn2Hi = -0.693359375F;
constexpr float kNegLn2Lo = 2.12194440e-4F;
constexpr float kExpP0 = 1.9875691500e-4F;
constexpr float kExpP1 = 1.3981999507e-3F;
constexpr float kExpP2 = 8.3334519073e-3F;
constexpr float kExpP3 = 4.1665795894e-2F;
constexpr float kExpP4 = 1.6666665459e-1F;
constexpr float kExpP5 = 5.0000001201e-1F;

/// p * 2^n by adding n to p's exponent field (n integral, result exponent
/// in [1, 253] by the argument above). The vector lanes do the same int32
/// add after a vcvtps2dq + shift.
inline float scale_pow2(float p, std::int32_t n) {
  std::int32_t bits;
  std::memcpy(&bits, &p, sizeof(bits));
  bits += n << 23;
  float r;
  std::memcpy(&r, &bits, sizeof(r));
  return r;
}

/// Clamp written in comparison form so NaN behaves exactly like
/// _mm256_min_ps/_mm256_max_ps (which return the second operand when either
/// input is NaN); the final unordered check then puts the *input bits* back,
/// so NaN propagates — the trainer's non-finite divergence guard depends on
/// poisoned weights surfacing as a non-finite loss. The vector lanes do the
/// same with a cmp-unordered + blend of the original input, so the
/// propagated payload is bit-identical across tiers.
inline float sigmoid_core(float x) {
  float z = x < kClampX ? x : kClampX;
  z = z > -kClampX ? z : -kClampX;
  const float t = -z;
  const float n = std::nearbyintf(t * kLog2e);
  float f = std::fmaf(n, kNegLn2Hi, t);
  f = std::fmaf(n, kNegLn2Lo, f);
  const float f2 = f * f;
  float p = kExpP0;
  p = std::fmaf(p, f, kExpP1);
  p = std::fmaf(p, f, kExpP2);
  p = std::fmaf(p, f, kExpP3);
  p = std::fmaf(p, f, kExpP4);
  p = std::fmaf(p, f, kExpP5);
  p = std::fmaf(p, f2, f);
  p += 1.0F;
  const float e = scale_pow2(p, static_cast<std::int32_t>(n));
  const float r = 1.0F / (1.0F + e);
  return x == x ? r : x;
}

inline float tanh_core(float x) {
  // The inner sigmoid's NaN pass-through is discarded: blend the *original*
  // input back, matching the vector lanes' blend of x (not 2x).
  const float r = std::fmaf(2.0F, sigmoid_core(x * 2.0F), -1.0F);
  return x == x ? r : x;
}

inline float relu_core(float x) { return x > 0.0F ? x : 0.0F; }

void sigmoid_map_scalar(const float* in, float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = sigmoid_core(in[i]);
}

void tanh_map_scalar(const float* in, float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = tanh_core(in[i]);
}

void relu_map_scalar(const float* in, float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = relu_core(in[i]);
}

/// Fused dequant epilogues: static_cast<float>(s32) rounds to nearest even
/// exactly like vcvtdq2ps, so the scalar and vector fusions agree bitwise.
void dq_sigmoid_scalar(const std::int32_t* in, std::size_t n, float mult,
                       float bias, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = sigmoid_core(std::fmaf(static_cast<float>(in[i]), mult, bias));
  }
}

void dq_tanh_scalar(const std::int32_t* in, std::size_t n, float mult,
                    float bias, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = tanh_core(std::fmaf(static_cast<float>(in[i]), mult, bias));
  }
}

void dq_relu_scalar(const std::int32_t* in, std::size_t n, float mult,
                    float bias, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = relu_core(std::fmaf(static_cast<float>(in[i]), mult, bias));
  }
}

// --- AVX2/FMA lanes --------------------------------------------------------

#ifdef CDL_ACT_SIMD

__attribute__((target("avx2,fma"))) inline __m256 sigmoid8(__m256 x) {
  const __m256 clamp = _mm256_set1_ps(kClampX);
  __m256 z = _mm256_min_ps(x, clamp);
  z = _mm256_max_ps(z, _mm256_set1_ps(-kClampX));
  const __m256 t = _mm256_xor_ps(z, _mm256_set1_ps(-0.0F));
  const __m256 n = _mm256_round_ps(
      _mm256_mul_ps(t, _mm256_set1_ps(kLog2e)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256 f = _mm256_fmadd_ps(n, _mm256_set1_ps(kNegLn2Hi), t);
  f = _mm256_fmadd_ps(n, _mm256_set1_ps(kNegLn2Lo), f);
  const __m256 f2 = _mm256_mul_ps(f, f);
  __m256 p = _mm256_set1_ps(kExpP0);
  p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(kExpP1));
  p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(kExpP2));
  p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(kExpP3));
  p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(kExpP4));
  p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(kExpP5));
  p = _mm256_fmadd_ps(p, f2, f);
  p = _mm256_add_ps(p, _mm256_set1_ps(1.0F));
  const __m256i shift = _mm256_slli_epi32(_mm256_cvtps_epi32(n), 23);
  const __m256 e = _mm256_castsi256_ps(
      _mm256_add_epi32(_mm256_castps_si256(p), shift));
  const __m256 one = _mm256_set1_ps(1.0F);
  const __m256 r = _mm256_div_ps(one, _mm256_add_ps(one, e));
  // NaN propagation: put the input bits back where x is unordered.
  return _mm256_blendv_ps(r, x, _mm256_cmp_ps(x, x, _CMP_UNORD_Q));
}

__attribute__((target("avx2,fma"))) inline __m256 tanh8(__m256 x) {
  const __m256 s = sigmoid8(_mm256_mul_ps(x, _mm256_set1_ps(2.0F)));
  const __m256 r =
      _mm256_fmadd_ps(_mm256_set1_ps(2.0F), s, _mm256_set1_ps(-1.0F));
  return _mm256_blendv_ps(r, x, _mm256_cmp_ps(x, x, _CMP_UNORD_Q));
}

__attribute__((target("avx2,fma"))) void sigmoid_map_avx2(const float* in,
                                                          float* out,
                                                          std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, sigmoid8(_mm256_loadu_ps(in + i)));
  }
  sigmoid_map_scalar(in + i, out + i, n - i);
}

__attribute__((target("avx2,fma"))) void tanh_map_avx2(const float* in,
                                                       float* out,
                                                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, tanh8(_mm256_loadu_ps(in + i)));
  }
  tanh_map_scalar(in + i, out + i, n - i);
}

__attribute__((target("avx2"))) void relu_map_avx2(const float* in, float* out,
                                                   std::size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_max_ps(_mm256_loadu_ps(in + i), zero));
  }
  relu_map_scalar(in + i, out + i, n - i);
}

__attribute__((target("avx2,fma"))) void dq_sigmoid_avx2(const std::int32_t* in,
                                                         std::size_t n,
                                                         float mult, float bias,
                                                         float* out) {
  const __m256 vm = _mm256_set1_ps(mult);
  const __m256 vb = _mm256_set1_ps(bias);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_fmadd_ps(
        _mm256_cvtepi32_ps(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i))),
        vm, vb);
    _mm256_storeu_ps(out + i, sigmoid8(v));
  }
  dq_sigmoid_scalar(in + i, n - i, mult, bias, out + i);
}

__attribute__((target("avx2,fma"))) void dq_tanh_avx2(const std::int32_t* in,
                                                      std::size_t n, float mult,
                                                      float bias, float* out) {
  const __m256 vm = _mm256_set1_ps(mult);
  const __m256 vb = _mm256_set1_ps(bias);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_fmadd_ps(
        _mm256_cvtepi32_ps(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i))),
        vm, vb);
    _mm256_storeu_ps(out + i, tanh8(v));
  }
  dq_tanh_scalar(in + i, n - i, mult, bias, out + i);
}

__attribute__((target("avx2,fma"))) void dq_relu_avx2(const std::int32_t* in,
                                                      std::size_t n, float mult,
                                                      float bias, float* out) {
  const __m256 vm = _mm256_set1_ps(mult);
  const __m256 vb = _mm256_set1_ps(bias);
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_fmadd_ps(
        _mm256_cvtepi32_ps(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i))),
        vm, vb);
    _mm256_storeu_ps(out + i, _mm256_max_ps(v, zero));
  }
  dq_relu_scalar(in + i, n - i, mult, bias, out + i);
}

// --- AVX-512F lanes --------------------------------------------------------

__attribute__((target("avx512f"))) inline __m512 sigmoid16(__m512 x) {
  const __m512 clamp = _mm512_set1_ps(kClampX);
  __m512 z = _mm512_min_ps(x, clamp);
  z = _mm512_max_ps(z, _mm512_set1_ps(-kClampX));
  const __m512 t = _mm512_castsi512_ps(_mm512_xor_si512(
      _mm512_castps_si512(z), _mm512_castps_si512(_mm512_set1_ps(-0.0F))));
  const __m512 n = _mm512_roundscale_ps(
      _mm512_mul_ps(t, _mm512_set1_ps(kLog2e)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m512 f = _mm512_fmadd_ps(n, _mm512_set1_ps(kNegLn2Hi), t);
  f = _mm512_fmadd_ps(n, _mm512_set1_ps(kNegLn2Lo), f);
  const __m512 f2 = _mm512_mul_ps(f, f);
  __m512 p = _mm512_set1_ps(kExpP0);
  p = _mm512_fmadd_ps(p, f, _mm512_set1_ps(kExpP1));
  p = _mm512_fmadd_ps(p, f, _mm512_set1_ps(kExpP2));
  p = _mm512_fmadd_ps(p, f, _mm512_set1_ps(kExpP3));
  p = _mm512_fmadd_ps(p, f, _mm512_set1_ps(kExpP4));
  p = _mm512_fmadd_ps(p, f, _mm512_set1_ps(kExpP5));
  p = _mm512_fmadd_ps(p, f2, f);
  p = _mm512_add_ps(p, _mm512_set1_ps(1.0F));
  const __m512i shift = _mm512_slli_epi32(_mm512_cvtps_epi32(n), 23);
  const __m512 e = _mm512_castsi512_ps(
      _mm512_add_epi32(_mm512_castps_si512(p), shift));
  const __m512 one = _mm512_set1_ps(1.0F);
  const __m512 r = _mm512_div_ps(one, _mm512_add_ps(one, e));
  // NaN propagation: put the input bits back where x is unordered.
  return _mm512_mask_mov_ps(r, _mm512_cmp_ps_mask(x, x, _CMP_UNORD_Q), x);
}

__attribute__((target("avx512f"))) inline __m512 tanh16(__m512 x) {
  const __m512 s = sigmoid16(_mm512_mul_ps(x, _mm512_set1_ps(2.0F)));
  const __m512 r =
      _mm512_fmadd_ps(_mm512_set1_ps(2.0F), s, _mm512_set1_ps(-1.0F));
  return _mm512_mask_mov_ps(r, _mm512_cmp_ps_mask(x, x, _CMP_UNORD_Q), x);
}

__attribute__((target("avx512f"))) void sigmoid_map_avx512(const float* in,
                                                           float* out,
                                                           std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(out + i, sigmoid16(_mm512_loadu_ps(in + i)));
  }
  sigmoid_map_scalar(in + i, out + i, n - i);
}

__attribute__((target("avx512f"))) void tanh_map_avx512(const float* in,
                                                        float* out,
                                                        std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(out + i, tanh16(_mm512_loadu_ps(in + i)));
  }
  tanh_map_scalar(in + i, out + i, n - i);
}

__attribute__((target("avx512f"))) void relu_map_avx512(const float* in,
                                                        float* out,
                                                        std::size_t n) {
  const __m512 zero = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(out + i, _mm512_max_ps(_mm512_loadu_ps(in + i), zero));
  }
  relu_map_scalar(in + i, out + i, n - i);
}

__attribute__((target("avx512f"))) void dq_sigmoid_avx512(
    const std::int32_t* in, std::size_t n, float mult, float bias, float* out) {
  const __m512 vm = _mm512_set1_ps(mult);
  const __m512 vb = _mm512_set1_ps(bias);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 v = _mm512_fmadd_ps(
        _mm512_cvtepi32_ps(
            _mm512_loadu_si512(reinterpret_cast<const void*>(in + i))),
        vm, vb);
    _mm512_storeu_ps(out + i, sigmoid16(v));
  }
  dq_sigmoid_scalar(in + i, n - i, mult, bias, out + i);
}

__attribute__((target("avx512f"))) void dq_tanh_avx512(const std::int32_t* in,
                                                       std::size_t n,
                                                       float mult, float bias,
                                                       float* out) {
  const __m512 vm = _mm512_set1_ps(mult);
  const __m512 vb = _mm512_set1_ps(bias);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 v = _mm512_fmadd_ps(
        _mm512_cvtepi32_ps(
            _mm512_loadu_si512(reinterpret_cast<const void*>(in + i))),
        vm, vb);
    _mm512_storeu_ps(out + i, tanh16(v));
  }
  dq_tanh_scalar(in + i, n - i, mult, bias, out + i);
}

__attribute__((target("avx512f"))) void dq_relu_avx512(const std::int32_t* in,
                                                       std::size_t n,
                                                       float mult, float bias,
                                                       float* out) {
  const __m512 vm = _mm512_set1_ps(mult);
  const __m512 vb = _mm512_set1_ps(bias);
  const __m512 zero = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 v = _mm512_fmadd_ps(
        _mm512_cvtepi32_ps(
            _mm512_loadu_si512(reinterpret_cast<const void*>(in + i))),
        vm, vb);
    _mm512_storeu_ps(out + i, _mm512_max_ps(v, zero));
  }
  dq_relu_scalar(in + i, n - i, mult, bias, out + i);
}

#endif  // CDL_ACT_SIMD

// --- dispatch --------------------------------------------------------------

struct ActKernels {
  void (*sigmoid)(const float*, float*, std::size_t);
  void (*tanh)(const float*, float*, std::size_t);
  void (*relu)(const float*, float*, std::size_t);
  void (*dq_sigmoid)(const std::int32_t*, std::size_t, float, float, float*);
  void (*dq_tanh)(const std::int32_t*, std::size_t, float, float, float*);
  void (*dq_relu)(const std::int32_t*, std::size_t, float, float, float*);
  const char* tier;
};

/// Same contract as the conv/qgemm kill switch: any non-empty value other
/// than "0" pins the scalar kernels.
bool act_force_scalar_env() {
  const char* value = std::getenv("CDL_FORCE_SCALAR");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

ActKernels select_act_kernels() {
  if (!act_force_scalar_env()) {
#ifdef CDL_ACT_SIMD
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx512f")) {
      return {sigmoid_map_avx512, tanh_map_avx512, relu_map_avx512,
              dq_sigmoid_avx512,  dq_tanh_avx512,  dq_relu_avx512,
              "avx512f"};
    }
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      return {sigmoid_map_avx2, tanh_map_avx2, relu_map_avx2,
              dq_sigmoid_avx2,  dq_tanh_avx2,  dq_relu_avx2,
              "avx2-fma"};
    }
#endif
  }
  return {sigmoid_map_scalar, tanh_map_scalar, relu_map_scalar,
          dq_sigmoid_scalar,  dq_tanh_scalar,  dq_relu_scalar,
          "scalar"};
}

const ActKernels& act_kernels() {
  static const ActKernels kernels = select_act_kernels();
  return kernels;
}

}  // namespace

const char* act_dispatch_tier() { return act_kernels().tier; }

float sigmoid_approx(float x) { return sigmoid_core(x); }

float tanh_approx(float x) { return tanh_core(x); }

void sigmoid_map(const float* in, float* out, std::size_t n) {
  act_kernels().sigmoid(in, out, n);
}

void tanh_map(const float* in, float* out, std::size_t n) {
  act_kernels().tanh(in, out, n);
}

void relu_map(const float* in, float* out, std::size_t n) {
  act_kernels().relu(in, out, n);
}

void dequant_sigmoid_plane(const std::int32_t* in, std::size_t n, float mult,
                           float bias, float* out) {
  act_kernels().dq_sigmoid(in, n, mult, bias, out);
}

void dequant_tanh_plane(const std::int32_t* in, std::size_t n, float mult,
                        float bias, float* out) {
  act_kernels().dq_tanh(in, n, mult, bias, out);
}

void dequant_relu_plane(const std::int32_t* in, std::size_t n, float mult,
                        float bias, float* out) {
  act_kernels().dq_relu(in, n, mult, bias, out);
}

}  // namespace cdl
