// Single-precision GEMM used by the im2col convolution path.
//
// Row-major C(m,n) = A(m,k) * B(k,n) (+ C when accumulate). The kernel packs
// B into kNr-wide column panels and A into kMr-tall row panels once per call,
// then runs a register-blocked 4x8 micro-kernel over full k — no SIMD
// intrinsics, the accumulator tile auto-vectorizes (on x86-64/GCC an
// AVX2/FMA clone of the micro-kernel is emitted and picked at load time).
// `sgemm_parallel` splits row panels across a ThreadPool; because every
// output row is accumulated in the same order regardless of the split, its
// results are bit-identical to the single-thread kernel for any thread
// count.
#pragma once

#include <cstddef>

namespace cdl {

class ThreadPool;

struct GemmDims {
  std::size_t m = 0;
  std::size_t k = 0;
  std::size_t n = 0;
};

/// Micro-kernel tile extents (A row panels are kGemmMr tall, B column panels
/// kGemmNr wide). Exposed so batched producers (e.g. the fused im2col
/// packer) can emit pre-packed operands directly.
inline constexpr std::size_t kGemmMr = 4;
inline constexpr std::size_t kGemmNr = 8;

/// C = A * B (row-major, contiguous). If `accumulate`, adds into C instead
/// of overwriting it. All pointers must reference non-overlapping storage of
/// at least m*k, k*n and m*n floats respectively. Thread-safe: packing
/// scratch is per-thread and reused across calls.
void sgemm(GemmDims dims, const float* a, const float* b, float* c,
           bool accumulate = false);

/// Same contract as sgemm(), with row panels divided over `pool`. Results
/// are bit-identical to sgemm() for every pool size.
void sgemm_parallel(GemmDims dims, const float* a, const float* b, float* c,
                    ThreadPool& pool, bool accumulate = false);

/// The original cache-blocked (unpacked, branchy) kernel, retained as the
/// comparison baseline for the micro_kernels bench and the GEMM tests.
void sgemm_blocked_reference(GemmDims dims, const float* a, const float* b,
                             float* c, bool accumulate = false);

// --- pre-packed entry points (stage-resident batched inference) -----------
//
// The staged batch engine keeps operands packed in planner-assigned arena
// slices instead of the per-call thread_local scratch sgemm() uses, so the
// hot path performs no allocation and no redundant packing passes.

/// Floats needed for a packed A(m,k) / packed B(k,n) operand.
[[nodiscard]] std::size_t gemm_packed_a_floats(std::size_t m, std::size_t k);
[[nodiscard]] std::size_t gemm_packed_b_floats(std::size_t k, std::size_t n);

/// Packs row-major A(m,k) into kGemmMr-tall row panels (zero-padded).
void gemm_pack_a(std::size_t m, std::size_t k, const float* a, float* pa);
/// Packs row-major B(k,n) into kGemmNr-wide column panels (zero-padded).
void gemm_pack_b(std::size_t k, std::size_t n, const float* b, float* pb);
/// Packs B = src^T where `src` is row-major (n,k) — the layout Dense and
/// LinearClassifier weights are stored in, so batched "X * W^T" products
/// need no materialized transpose.
void gemm_pack_b_transposed(std::size_t k, std::size_t n, const float* src,
                            float* pb);

/// C(m,n) = A*B over pre-packed operands (overwrite semantics). When
/// `col_init` is non-null, the accumulator of column j starts at col_init[j]
/// instead of zero before the k loop — this reproduces bit-exactly the
/// "acc = bias; acc += w[i]*x[i]" scalar chains of Dense::infer and
/// LinearClassifier::scores. Work splits over *column* panels when `pool`
/// has more than one worker (batched operands are wide, not tall); every
/// output element accumulates over k in one fixed order, so results are
/// bit-identical for any pool size.
void sgemm_packed(GemmDims dims, const float* pa, const float* pb, float* c,
                  const float* col_init = nullptr, ThreadPool* pool = nullptr);

}  // namespace cdl
