// Single-precision GEMM used by the im2col convolution path.
//
// Row-major C(m,n) = A(m,k) * B(k,n) (+ C when accumulate). The kernel packs
// B into kNr-wide column panels and A into kMr-tall row panels once per call,
// then runs a register-blocked 4x8 micro-kernel over full k — no SIMD
// intrinsics, the accumulator tile auto-vectorizes (on x86-64/GCC an
// AVX2/FMA clone of the micro-kernel is emitted and picked at load time).
// `sgemm_parallel` splits row panels across a ThreadPool; because every
// output row is accumulated in the same order regardless of the split, its
// results are bit-identical to the single-thread kernel for any thread
// count.
#pragma once

#include <cstddef>

namespace cdl {

class ThreadPool;

struct GemmDims {
  std::size_t m = 0;
  std::size_t k = 0;
  std::size_t n = 0;
};

/// C = A * B (row-major, contiguous). If `accumulate`, adds into C instead
/// of overwriting it. All pointers must reference non-overlapping storage of
/// at least m*k, k*n and m*n floats respectively. Thread-safe: packing
/// scratch is per-thread and reused across calls.
void sgemm(GemmDims dims, const float* a, const float* b, float* c,
           bool accumulate = false);

/// Same contract as sgemm(), with row panels divided over `pool`. Results
/// are bit-identical to sgemm() for every pool size.
void sgemm_parallel(GemmDims dims, const float* a, const float* b, float* c,
                    ThreadPool& pool, bool accumulate = false);

/// The original cache-blocked (unpacked, branchy) kernel, retained as the
/// comparison baseline for the micro_kernels bench and the GEMM tests.
void sgemm_blocked_reference(GemmDims dims, const float* a, const float* b,
                             float* c, bool accumulate = false);

}  // namespace cdl
