// Minimal single-precision GEMM used by the im2col convolution path.
//
// Row-major C(m,n) = A(m,k) * B(k,n) (+ C when accumulate). Blocked for L1
// locality; no SIMD intrinsics — the compiler vectorizes the inner loop.
#pragma once

#include <cstddef>

namespace cdl {

struct GemmDims {
  std::size_t m = 0;
  std::size_t k = 0;
  std::size_t n = 0;
};

/// C = A * B (row-major, contiguous). If `accumulate`, adds into C instead
/// of overwriting it. All pointers must reference non-overlapping storage of
/// at least m*k, k*n and m*n floats respectively.
void sgemm(GemmDims dims, const float* a, const float* b, float* c,
           bool accumulate = false);

}  // namespace cdl
