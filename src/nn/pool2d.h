// Pool2D: non-overlapping max- or average-pooling (stride == window).
//
// A window of 1 is the identity (used by the paper's 8-layer network, whose
// P3 stage keeps the 3x3 extent). Spatial extents must be divisible by the
// window, matching all architectures in the paper.
#pragma once

#include "nn/layer.h"

namespace cdl {

enum class PoolMode { kMax, kAverage };

class Pool2D final : public Layer {
 public:
  Pool2D(std::size_t window, PoolMode mode = PoolMode::kMax);

  Tensor forward(const Tensor& input) override;
  [[nodiscard]] Tensor infer(const Tensor& input) const override;
  void infer_block(const Shape& in_shape, const float* in, float* out,
                   std::size_t count, float* scratch,
                   ThreadPool* pool) const override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input_shape) const override;
  [[nodiscard]] OpCount forward_ops(const Shape& input_shape) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t window() const { return window_; }
  [[nodiscard]] PoolMode mode() const { return mode_; }

  /// Pools one image whose channel c plane starts at
  /// `in + c * channel_stride` (h x w row-major), writing the pooled CHW
  /// output contiguously at `out`. Scan order and comparisons are exactly
  /// those of infer(), so results stay bit-identical whether the input is a
  /// standalone tensor (channel_stride = h*w) or one image's column block
  /// inside a stage-resident batch matrix.
  void pool_image(const float* in, std::size_t channel_stride, std::size_t c,
                  std::size_t h, std::size_t w, float* out) const;

 private:
  void check_input(const Shape& s) const;

  std::size_t window_;
  PoolMode mode_;
  Shape cached_input_shape_;
  std::vector<std::size_t> argmax_;  ///< flat input index of each max (kMax)
};

}  // namespace cdl
