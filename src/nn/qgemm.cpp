#include "nn/qgemm.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/thread_pool.h"

// Raw-intrinsics tiers, selected once at runtime. Unlike the fp32 GEMM's
// target_clones trick this must be explicit dispatch: the byte dot products
// (`vpmaddubsw`, `vpdpbusd`) have no portable-C++ spelling the
// auto-vectorizer would find against a baseline target.
#if defined(__x86_64__) && defined(__GNUC__)
#define CDL_QGEMM_X86 1
#include <immintrin.h>
#endif

namespace cdl {

namespace {

constexpr std::size_t kMr = kQgemmMr;
constexpr std::size_t kNr = kQgemmNr;
constexpr std::size_t kKg = kQgemmKGroup;

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

// One panel-runner per tier, all computing column panels [jp0, jp1) of C
// against fully packed operands. Integer accumulation is exact, so the
// tiers are interchangeable bit-for-bit (packed-A bound, see header).
using PanelFn = void (*)(const QgemmDims&, const std::int8_t*,
                         const std::uint8_t*, std::int32_t*, std::size_t,
                         std::size_t);

/// Writes the kMr x kNr accumulator tile into C, clipped to the matrix edge.
void store_tile(const std::int32_t* acc, std::int32_t* c, std::size_t n,
                std::size_t i0, std::size_t j0, std::size_t mr,
                std::size_t nr) {
  for (std::size_t r = 0; r < mr; ++r) {
    std::int32_t* c_row = c + (i0 + r) * n + j0;
    const std::int32_t* acc_row = acc + r * kNr;
    for (std::size_t jj = 0; jj < nr; ++jj) c_row[jj] = acc_row[jj];
  }
}

void run_panels_scalar(const QgemmDims& dims, const std::int8_t* pa,
                       const std::uint8_t* pb, std::int32_t* c,
                       std::size_t jp0, std::size_t jp1) {
  const std::size_t kpad = qgemm_padded_k(dims.k);
  const std::size_t groups = kpad / kKg;
  const std::size_t ipanels = ceil_div(dims.m, kMr);
  for (std::size_t jp = jp0; jp < jp1; ++jp) {
    const std::size_t j0 = jp * kNr;
    const std::size_t nr = std::min(kNr, dims.n - j0);
    const std::uint8_t* bp = pb + jp * kpad * kNr;
    for (std::size_t ip = 0; ip < ipanels; ++ip) {
      const std::size_t i0 = ip * kMr;
      const std::size_t mr = std::min(kMr, dims.m - i0);
      const std::int8_t* ap = pa + ip * kpad * kMr;
      std::int32_t acc[kMr * kNr] = {};
      for (std::size_t g = 0; g < groups; ++g) {
        const std::int8_t* ag = ap + g * kMr * kKg;
        const std::uint8_t* bg = bp + g * kNr * kKg;
        for (std::size_t r = 0; r < kMr; ++r) {
          for (std::size_t jj = 0; jj < kNr; ++jj) {
            std::int32_t dot = 0;
            for (std::size_t t = 0; t < kKg; ++t) {
              dot += static_cast<std::int32_t>(ag[r * kKg + t]) *
                     static_cast<std::int32_t>(bg[jj * kKg + t]);
            }
            acc[r * kNr + jj] += dot;
          }
        }
      }
      store_tile(acc, c, dims.n, i0, j0, mr, nr);
    }
  }
}

#ifdef CDL_QGEMM_X86

/// Broadcasts one packed-A row's k-group (4 consecutive s8 bytes) to every
/// 32-bit lane. memcpy keeps the byte-buffer read strict-aliasing clean; it
/// compiles to a single broadcast load.
inline std::int32_t load_a_group(const std::int8_t* p) {
  std::int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

__attribute__((target("avx2"))) void run_panels_avx2(
    const QgemmDims& dims, const std::int8_t* pa, const std::uint8_t* pb,
    std::int32_t* c, std::size_t jp0, std::size_t jp1) {
  const std::size_t kpad = qgemm_padded_k(dims.k);
  const std::size_t groups = kpad / kKg;
  const std::size_t ipanels = ceil_div(dims.m, kMr);
  const __m256i ones = _mm256_set1_epi16(1);
  for (std::size_t jp = jp0; jp < jp1; ++jp) {
    const std::size_t j0 = jp * kNr;
    const std::size_t nr = std::min(kNr, dims.n - j0);
    const std::uint8_t* bp = pb + jp * kpad * kNr;
    for (std::size_t ip = 0; ip < ipanels; ++ip) {
      const std::size_t i0 = ip * kMr;
      const std::size_t mr = std::min(kMr, dims.m - i0);
      const std::int8_t* ap = pa + ip * kpad * kMr;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      for (std::size_t g = 0; g < groups; ++g) {
        // One 256-bit load covers the k-group for all 8 columns; each row's
        // 4 weights broadcast as an int32. vpmaddubsw forms u8*s8 pair sums
        // (s16, never saturating under the packed-A bound), vpmaddwd
        // finishes the 4-way dot into s32 lanes.
        const __m256i bv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(bp + g * kNr * kKg));
        const std::int8_t* ag = ap + g * kMr * kKg;
        const __m256i a0 = _mm256_set1_epi32(load_a_group(ag + 0 * kKg));
        const __m256i a1 = _mm256_set1_epi32(load_a_group(ag + 1 * kKg));
        const __m256i a2 = _mm256_set1_epi32(load_a_group(ag + 2 * kKg));
        const __m256i a3 = _mm256_set1_epi32(load_a_group(ag + 3 * kKg));
        acc0 = _mm256_add_epi32(
            acc0, _mm256_madd_epi16(_mm256_maddubs_epi16(bv, a0), ones));
        acc1 = _mm256_add_epi32(
            acc1, _mm256_madd_epi16(_mm256_maddubs_epi16(bv, a1), ones));
        acc2 = _mm256_add_epi32(
            acc2, _mm256_madd_epi16(_mm256_maddubs_epi16(bv, a2), ones));
        acc3 = _mm256_add_epi32(
            acc3, _mm256_madd_epi16(_mm256_maddubs_epi16(bv, a3), ones));
      }
      alignas(32) std::int32_t acc[kMr * kNr];
      _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 0 * kNr), acc0);
      _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 1 * kNr), acc1);
      _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 2 * kNr), acc2);
      _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 3 * kNr), acc3);
      store_tile(acc, c, dims.n, i0, j0, mr, nr);
    }
  }
}

__attribute__((target("avx512vnni,avx512vl"))) void run_panels_vnni(
    const QgemmDims& dims, const std::int8_t* pa, const std::uint8_t* pb,
    std::int32_t* c, std::size_t jp0, std::size_t jp1) {
  const std::size_t kpad = qgemm_padded_k(dims.k);
  const std::size_t groups = kpad / kKg;
  const std::size_t ipanels = ceil_div(dims.m, kMr);
  for (std::size_t jp = jp0; jp < jp1; ++jp) {
    const std::size_t j0 = jp * kNr;
    const std::size_t nr = std::min(kNr, dims.n - j0);
    const std::uint8_t* bp = pb + jp * kpad * kNr;
    for (std::size_t ip = 0; ip < ipanels; ++ip) {
      const std::size_t i0 = ip * kMr;
      const std::size_t mr = std::min(kMr, dims.m - i0);
      const std::int8_t* ap = pa + ip * kpad * kMr;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      for (std::size_t g = 0; g < groups; ++g) {
        const __m256i bv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(bp + g * kNr * kKg));
        const std::int8_t* ag = ap + g * kMr * kKg;
        // vpdpbusd fuses the whole u8*s8 4-way dot product with the s32
        // accumulate; no s16 intermediate exists, so this tier is exact for
        // the full s8 range, not just the packed-A bound.
        acc0 = _mm256_dpbusd_epi32(
            acc0, bv, _mm256_set1_epi32(load_a_group(ag + 0 * kKg)));
        acc1 = _mm256_dpbusd_epi32(
            acc1, bv, _mm256_set1_epi32(load_a_group(ag + 1 * kKg)));
        acc2 = _mm256_dpbusd_epi32(
            acc2, bv, _mm256_set1_epi32(load_a_group(ag + 2 * kKg)));
        acc3 = _mm256_dpbusd_epi32(
            acc3, bv, _mm256_set1_epi32(load_a_group(ag + 3 * kKg)));
      }
      alignas(32) std::int32_t acc[kMr * kNr];
      _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 0 * kNr), acc0);
      _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 1 * kNr), acc1);
      _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 2 * kNr), acc2);
      _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 3 * kNr), acc3);
      store_tile(acc, c, dims.n, i0, j0, mr, nr);
    }
  }
}

#endif  // CDL_QGEMM_X86

/// CDL_FORCE_SCALAR=<non-empty, not "0"> pins dispatch to the scalar tier
/// (read once, at first dispatch — the CI scalar job sets it before launch).
bool force_scalar_env() {
  const char* v = std::getenv("CDL_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

struct Dispatch {
  PanelFn fn;
  QgemmTier tier;
};

Dispatch select_dispatch() {
#ifdef CDL_QGEMM_X86
  if (!force_scalar_env()) {
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx512vnni") &&
        __builtin_cpu_supports("avx512vl")) {
      return {run_panels_vnni, QgemmTier::kAvx512Vnni};
    }
    if (__builtin_cpu_supports("avx2")) {
      return {run_panels_avx2, QgemmTier::kAvx2};
    }
  }
#endif
  return {run_panels_scalar, QgemmTier::kScalar};
}

const Dispatch& dispatch() {
  static const Dispatch d = select_dispatch();
  return d;
}

}  // namespace

std::size_t qgemm_padded_k(std::size_t k) {
  return ceil_div(k, kKg) * kKg;
}

std::size_t qgemm_packed_a_bytes(std::size_t m, std::size_t k) {
  return ceil_div(m, kMr) * qgemm_padded_k(k) * kMr;
}

std::size_t qgemm_packed_b_bytes(std::size_t k, std::size_t n) {
  return ceil_div(n, kNr) * qgemm_padded_k(k) * kNr;
}

void qgemm_pack_a(std::size_t m, std::size_t k, const std::int8_t* a,
                  std::int8_t* pa) {
  const std::size_t kpad = qgemm_padded_k(k);
  const std::size_t panels = ceil_div(m, kMr);
  std::memset(pa, 0, panels * kpad * kMr);
  for (std::size_t ip = 0; ip < panels; ++ip) {
    const std::size_t i0 = ip * kMr;
    const std::size_t rows = std::min(kMr, m - i0);
    std::int8_t* panel = pa + ip * kpad * kMr;
    for (std::size_t r = 0; r < rows; ++r) {
      const std::int8_t* src = a + (i0 + r) * k;
      for (std::size_t p = 0; p < k; ++p) {
        panel[(p / kKg) * kMr * kKg + r * kKg + (p % kKg)] = src[p];
      }
    }
  }
}

void qgemm_pack_b(std::size_t k, std::size_t n, const std::uint8_t* b,
                  std::uint8_t* pb) {
  const std::size_t kpad = qgemm_padded_k(k);
  const std::size_t panels = ceil_div(n, kNr);
  std::memset(pb, 0, panels * kpad * kNr);
  for (std::size_t panel = 0; panel < panels; ++panel) {
    const std::size_t j0 = panel * kNr;
    const std::size_t width = std::min(kNr, n - j0);
    std::uint8_t* dst = pb + panel * kpad * kNr;
    for (std::size_t p = 0; p < k; ++p) {
      std::uint8_t* group = dst + (p / kKg) * kNr * kKg + (p % kKg);
      const std::uint8_t* src = b + p * n + j0;
      for (std::size_t jj = 0; jj < width; ++jj) group[jj * kKg] = src[jj];
    }
  }
}

void qgemm_pack_b_transposed(std::size_t k, std::size_t n,
                             const std::uint8_t* src, std::uint8_t* pb) {
  const std::size_t kpad = qgemm_padded_k(k);
  const std::size_t panels = ceil_div(n, kNr);
  std::memset(pb, 0, panels * kpad * kNr);
  const std::size_t full_groups = k / kKg;
  const std::size_t tail = k % kKg;
  for (std::size_t panel = 0; panel < panels; ++panel) {
    const std::size_t j0 = panel * kNr;
    const std::size_t width = std::min(kNr, n - j0);
    std::uint8_t* dst = pb + panel * kpad * kNr;
    for (std::size_t jj = 0; jj < width; ++jj) {
      const std::uint8_t* row = src + (j0 + jj) * k;
      // One kKg-byte (dword) move per k-group instead of per-byte stores
      // with div/mod index math; pure byte movement, layout unchanged.
      std::uint8_t* col = dst + jj * kKg;
      for (std::size_t g = 0; g < full_groups; ++g) {
        std::memcpy(col + g * kNr * kKg, row + g * kKg, kKg);
      }
      if (tail != 0) {
        std::memcpy(col + full_groups * kNr * kKg, row + full_groups * kKg,
                    tail);
      }
    }
  }
}

void qgemm_pack_b_im2col(const std::uint8_t* images, std::size_t count,
                         std::size_t c, std::size_t h, std::size_t w,
                         std::size_t kernel, std::uint8_t* pb,
                         std::size_t panel_begin, std::size_t panel_end) {
  const std::size_t oh = h - kernel + 1;
  const std::size_t ow = w - kernel + 1;
  const std::size_t pixels = oh * ow;
  const std::size_t n = count * pixels;
  const std::size_t k = c * kernel * kernel;
  const std::size_t kpad = qgemm_padded_k(k);
  // Fast path: stage each kernel patch contiguously (row-wise byte copies),
  // then scatter it into the panel one k-group dword at a time — ~4x fewer
  // stores and no per-byte index arithmetic. Byte moves only, so the packed
  // layout is bit-identical to the general path below.
  constexpr std::size_t kMaxStagedK = 512;
  if (kpad <= kMaxStagedK) {
    // Per-patch-element source offsets relative to the patch origin pixel;
    // stack-resident so the hot batch path stays allocation free.
    std::size_t off[kMaxStagedK];
    {
      std::size_t p = 0;
      for (std::size_t ic = 0; ic < c; ++ic) {
        for (std::size_t ky = 0; ky < kernel; ++ky) {
          for (std::size_t kx = 0; kx < kernel; ++kx, ++p) {
            off[p] = ic * h * w + ky * w + kx;
          }
        }
      }
    }
    std::uint8_t patch[kMaxStagedK];
    std::memset(patch + k, 0, kpad - k);
    const std::size_t groups = kpad / kKg;
    for (std::size_t panel = panel_begin; panel < panel_end; ++panel) {
      const std::size_t j0 = panel * kNr;
      const std::size_t width = std::min(kNr, n - j0);
      std::uint8_t* dst = pb + panel * kpad * kNr;
      const std::size_t img = j0 / pixels;
      const std::size_t pix = j0 % pixels;
      const std::size_t oy = pix / ow;
      const std::size_t ox = pix % ow;
#if defined(CDL_QGEMM_X86)
      // Interior panel: all 8 columns sit in one output row, so each patch
      // element's 8 source bytes are contiguous (stride-1 conv) and the
      // panel is a 4x8 byte transpose per k-group — two unpack rounds in
      // SSE registers. Pure byte movement: bit-identical to the scalar path.
      if (width == kNr && ox + kNr <= ow) {
        const std::uint8_t* base = images + img * c * h * w + oy * w + ox;
        const __m128i zero = _mm_setzero_si128();
        for (std::size_t g = 0; g < groups; ++g) {
          const std::size_t p0 = g * kKg;
          const auto load_row = [&](std::size_t p) {
            return p < k ? _mm_loadl_epi64(reinterpret_cast<const __m128i*>(
                               base + off[p]))
                         : zero;
          };
          const __m128i r0 = load_row(p0);
          const __m128i r1 = load_row(p0 + 1);
          const __m128i r2 = load_row(p0 + 2);
          const __m128i r3 = load_row(p0 + 3);
          const __m128i t0 = _mm_unpacklo_epi8(r0, r1);
          const __m128i t1 = _mm_unpacklo_epi8(r2, r3);
          std::uint8_t* out = dst + g * kNr * kKg;
          _mm_storeu_si128(reinterpret_cast<__m128i*>(out),
                           _mm_unpacklo_epi16(t0, t1));
          _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16),
                           _mm_unpackhi_epi16(t0, t1));
        }
        continue;
      }
#endif
      // Edge panel (or no SIMD): stage each kernel patch contiguously
      // (row-wise byte copies), then scatter whole k-group dwords.
      if (width < kNr) std::memset(dst, 0, kpad * kNr);
      for (std::size_t jj = 0; jj < width; ++jj) {
        const std::size_t col = j0 + jj;
        const std::uint8_t* base = images + (col / pixels) * c * h * w +
                                   ((col % pixels) / ow) * w +
                                   (col % pixels) % ow;
        std::uint8_t* staged = patch;
        for (std::size_t ic = 0; ic < c; ++ic) {
          const std::uint8_t* plane = base + ic * h * w;
          for (std::size_t ky = 0; ky < kernel; ++ky, staged += kernel) {
            std::memcpy(staged, plane + ky * w, kernel);
          }
        }
        std::uint8_t* out = dst + jj * kKg;
        for (std::size_t g = 0; g < groups; ++g) {
          std::memcpy(out + g * kNr * kKg, patch + g * kKg, kKg);
        }
      }
    }
    return;
  }
  for (std::size_t panel = panel_begin; panel < panel_end; ++panel) {
    const std::size_t j0 = panel * kNr;
    const std::size_t width = std::min(kNr, n - j0);
    std::uint8_t* dst = pb + panel * kpad * kNr;
    std::memset(dst, 0, kpad * kNr);
    for (std::size_t jj = 0; jj < width; ++jj) {
      const std::size_t col = j0 + jj;
      const std::size_t img = col / pixels;
      const std::size_t pix = col % pixels;
      const std::size_t oy = pix / ow;
      const std::size_t ox = pix % ow;
      const std::uint8_t* base = images + img * c * h * w + oy * w + ox;
      std::size_t p = 0;
      for (std::size_t ic = 0; ic < c; ++ic) {
        const std::uint8_t* plane = base + ic * h * w;
        for (std::size_t ky = 0; ky < kernel; ++ky) {
          const std::uint8_t* row = plane + ky * w;
          for (std::size_t kx = 0; kx < kernel; ++kx, ++p) {
            dst[(p / kKg) * kNr * kKg + jj * kKg + (p % kKg)] = row[kx];
          }
        }
      }
    }
  }
}

const char* to_string(QgemmTier tier) {
  switch (tier) {
    case QgemmTier::kAvx512Vnni:
      return "avx512-vnni";
    case QgemmTier::kAvx2:
      return "avx2";
    case QgemmTier::kScalar:
    default:
      return "scalar";
  }
}

QgemmTier qgemm_tier() { return dispatch().tier; }

void qgemm_packed(QgemmDims dims, const std::int8_t* pa,
                  const std::uint8_t* pb, std::int32_t* c, ThreadPool* pool) {
  if (dims.m == 0 || dims.n == 0) return;
  if (dims.k == 0) {
    std::memset(c, 0, dims.m * dims.n * sizeof(std::int32_t));
    return;
  }
  const PanelFn fn = dispatch().fn;
  const std::size_t jpanels = ceil_div(dims.n, kNr);
  if (pool == nullptr || pool->size() <= 1 || jpanels == 1) {
    fn(dims, pa, pb, c, 0, jpanels);
    return;
  }
  // Workers own disjoint column panels; integer accumulation is exact, so
  // any split is bit-identical to serial. Single-reference capture keeps the
  // ChunkFn in std::function's small-object buffer (no allocation).
  struct Ctx {
    PanelFn fn;
    const QgemmDims* dims;
    const std::int8_t* pa;
    const std::uint8_t* pb;
    std::int32_t* c;
  } ctx{fn, &dims, pa, pb, c};
  pool->parallel_for(0, jpanels,
                     [&ctx](std::size_t, std::size_t jp0, std::size_t jp1) {
                       ctx.fn(*ctx.dims, ctx.pa, ctx.pb, ctx.c, jp0, jp1);
                     });
}

void qgemm_packed_reference(QgemmDims dims, const std::int8_t* pa,
                            const std::uint8_t* pb, std::int32_t* c) {
  if (dims.m == 0 || dims.n == 0) return;
  if (dims.k == 0) {
    std::memset(c, 0, dims.m * dims.n * sizeof(std::int32_t));
    return;
  }
  run_panels_scalar(dims, pa, pb, c, 0, ceil_div(dims.n, kNr));
}

void qgemm(QgemmDims dims, const std::int8_t* a, const std::uint8_t* b,
           std::int32_t* c) {
  if (dims.m == 0 || dims.n == 0) return;
  if (dims.k == 0) {
    std::memset(c, 0, dims.m * dims.n * sizeof(std::int32_t));
    return;
  }
  thread_local std::vector<std::int8_t> pa;
  thread_local std::vector<std::uint8_t> pb;
  pa.resize(qgemm_packed_a_bytes(dims.m, dims.k));
  pb.resize(qgemm_packed_b_bytes(dims.k, dims.n));
  qgemm_pack_a(dims.m, dims.k, a, pa.data());
  qgemm_pack_b(dims.k, dims.n, b, pb.data());
  qgemm_packed(dims, pa.data(), pb.data(), c);
}

}  // namespace cdl
