#include "nn/optimizer.h"

#include <cmath>
#include <stdexcept>

namespace cdl {

bool ParamStepStats::finite() const {
  return std::isfinite(grad_l2) && std::isfinite(grad_max_abs) &&
         std::isfinite(update_l2) && std::isfinite(update_max_abs) &&
         std::isfinite(weight_l2) && std::isfinite(weight_max_abs);
}

SgdOptimizer::SgdOptimizer(SgdConfig config)
    : config_(config), lr_(config.learning_rate) {
  if (config.learning_rate <= 0.0F) {
    throw std::invalid_argument("SgdOptimizer: learning rate must be positive");
  }
  if (config.momentum < 0.0F || config.momentum >= 1.0F) {
    throw std::invalid_argument("SgdOptimizer: momentum must be in [0, 1)");
  }
  if (config.lr_decay <= 0.0F || config.lr_decay > 1.0F) {
    throw std::invalid_argument("SgdOptimizer: lr_decay must be in (0, 1]");
  }
}

void SgdOptimizer::step(Network& net) {
  const std::vector<Tensor*> params = net.parameters();
  const std::vector<Tensor*> grads = net.gradients();
  if (params.size() != grads.size()) {
    throw std::logic_error("SgdOptimizer: parameter/gradient count mismatch");
  }
  if (velocity_.empty()) {
    velocity_.reserve(params.size());
    for (const Tensor* p : params) velocity_.emplace_back(p->shape());
  }
  if (velocity_.size() != params.size()) {
    throw std::logic_error("SgdOptimizer: stepped against a different network");
  }

  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor& p = *params[i];
    Tensor& g = *grads[i];
    Tensor& v = velocity_[i];
    if (p.shape() != g.shape() || p.shape() != v.shape()) {
      throw std::logic_error("SgdOptimizer: shape mismatch at parameter " +
                             std::to_string(i));
    }
    const float mu = config_.momentum;
    if (sink_ == nullptr || !sink_->wants_stats()) {
      for (std::size_t k = 0; k < p.numel(); ++k) {
        v[k] = mu * v[k] - lr_ * g[k];
        p[k] += v[k];
      }
    } else {
      // Recorded step: same update arithmetic, plus serial double-precision
      // accumulation in element order (deterministic for any thread count).
      ParamStepStats stats;
      stats.param = i;
      double g2 = 0.0;
      double u2 = 0.0;
      double w2 = 0.0;
      for (std::size_t k = 0; k < p.numel(); ++k) {
        const double gk = static_cast<double>(g[k]);
        g2 += gk * gk;
        stats.grad_max_abs = std::max(stats.grad_max_abs, std::abs(gk));
        v[k] = mu * v[k] - lr_ * g[k];
        p[k] += v[k];
        const double uk = static_cast<double>(v[k]);
        const double wk = static_cast<double>(p[k]);
        u2 += uk * uk;
        stats.update_max_abs = std::max(stats.update_max_abs, std::abs(uk));
        w2 += wk * wk;
        stats.weight_max_abs = std::max(stats.weight_max_abs, std::abs(wk));
      }
      stats.grad_l2 = std::sqrt(g2);
      stats.update_l2 = std::sqrt(u2);
      stats.weight_l2 = std::sqrt(w2);
      sink_->on_param_step(stats);
    }
    g.zero();
  }
}

void SgdOptimizer::end_epoch() { lr_ *= config_.lr_decay; }

}  // namespace cdl
