#include "nn/optimizer.h"

#include <stdexcept>

namespace cdl {

SgdOptimizer::SgdOptimizer(SgdConfig config)
    : config_(config), lr_(config.learning_rate) {
  if (config.learning_rate <= 0.0F) {
    throw std::invalid_argument("SgdOptimizer: learning rate must be positive");
  }
  if (config.momentum < 0.0F || config.momentum >= 1.0F) {
    throw std::invalid_argument("SgdOptimizer: momentum must be in [0, 1)");
  }
  if (config.lr_decay <= 0.0F || config.lr_decay > 1.0F) {
    throw std::invalid_argument("SgdOptimizer: lr_decay must be in (0, 1]");
  }
}

void SgdOptimizer::step(Network& net) {
  const std::vector<Tensor*> params = net.parameters();
  const std::vector<Tensor*> grads = net.gradients();
  if (params.size() != grads.size()) {
    throw std::logic_error("SgdOptimizer: parameter/gradient count mismatch");
  }
  if (velocity_.empty()) {
    velocity_.reserve(params.size());
    for (const Tensor* p : params) velocity_.emplace_back(p->shape());
  }
  if (velocity_.size() != params.size()) {
    throw std::logic_error("SgdOptimizer: stepped against a different network");
  }

  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor& p = *params[i];
    Tensor& g = *grads[i];
    Tensor& v = velocity_[i];
    if (p.shape() != g.shape() || p.shape() != v.shape()) {
      throw std::logic_error("SgdOptimizer: shape mismatch at parameter " +
                             std::to_string(i));
    }
    const float mu = config_.momentum;
    for (std::size_t k = 0; k < p.numel(); ++k) {
      v[k] = mu * v[k] - lr_ * g[k];
      p[k] += v[k];
    }
    g.zero();
  }
}

void SgdOptimizer::end_epoch() { lr_ *= config_.lr_decay; }

}  // namespace cdl
