#include "nn/loss.h"

#include <cmath>
#include <stdexcept>

#include "nn/softmax.h"

namespace cdl {

namespace {
void check_target(const Tensor& scores, std::size_t target) {
  if (scores.shape().rank() != 1) {
    throw std::invalid_argument("Loss: scores must be rank-1, got " +
                                scores.shape().to_string());
  }
  if (target >= scores.numel()) {
    throw std::invalid_argument("Loss: target " + std::to_string(target) +
                                " out of range for " +
                                std::to_string(scores.numel()) + " classes");
  }
}
}  // namespace

float SoftmaxCrossEntropyLoss::value(const Tensor& scores,
                                     std::size_t target) const {
  check_target(scores, target);
  const Tensor p = softmax(scores);
  // Clamp away from zero so a maximally confident wrong answer stays finite.
  return -std::log(std::max(p[target], 1e-12F));
}

Tensor SoftmaxCrossEntropyLoss::grad(const Tensor& scores,
                                     std::size_t target) const {
  check_target(scores, target);
  Tensor g = softmax(scores);
  g[target] -= 1.0F;
  return g;
}

float MseLoss::value(const Tensor& scores, std::size_t target) const {
  check_target(scores, target);
  float acc = 0.0F;
  for (std::size_t i = 0; i < scores.numel(); ++i) {
    const float t = (i == target) ? 1.0F : 0.0F;
    const float d = scores[i] - t;
    acc += d * d;
  }
  return acc / static_cast<float>(scores.numel());
}

Tensor MseLoss::grad(const Tensor& scores, std::size_t target) const {
  check_target(scores, target);
  Tensor g(scores.shape());
  const float scale = 2.0F / static_cast<float>(scores.numel());
  for (std::size_t i = 0; i < scores.numel(); ++i) {
    const float t = (i == target) ? 1.0F : 0.0F;
    g[i] = scale * (scores[i] - t);
  }
  return g;
}

}  // namespace cdl
