// OpCount: arithmetic/memory operation accounting for a layer or network.
//
// The paper quantifies efficiency as "average number of operations per input"
// (OPS) and converts op counts to 45 nm energy via RTL synthesis. We track op
// categories explicitly so the energy model (src/energy) can price each class
// of operation separately.
#pragma once

#include <cstdint>
#include <string>

namespace cdl {

struct OpCount {
  std::uint64_t macs = 0;         ///< multiply-accumulate pairs
  std::uint64_t adds = 0;         ///< standalone additions/subtractions
  std::uint64_t compares = 0;     ///< comparisons (max-pooling, argmax)
  std::uint64_t activations = 0;  ///< nonlinear function evaluations
  std::uint64_t divides = 0;      ///< divisions (softmax/avg-pool)
  std::uint64_t mem_reads = 0;    ///< 32-bit word reads (weights + activations)
  std::uint64_t mem_writes = 0;   ///< 32-bit word writes (activations)

  /// Scalar "OPS" figure used for the paper's normalized-OPS plots:
  /// one MAC counts as two operations (multiply + add).
  [[nodiscard]] std::uint64_t total_compute() const {
    return 2 * macs + adds + compares + activations + divides;
  }

  OpCount& operator+=(const OpCount& rhs) {
    macs += rhs.macs;
    adds += rhs.adds;
    compares += rhs.compares;
    activations += rhs.activations;
    divides += rhs.divides;
    mem_reads += rhs.mem_reads;
    mem_writes += rhs.mem_writes;
    return *this;
  }

  friend OpCount operator+(OpCount lhs, const OpCount& rhs) {
    lhs += rhs;
    return lhs;
  }

  OpCount& operator*=(std::uint64_t n) {
    macs *= n;
    adds *= n;
    compares *= n;
    activations *= n;
    divides *= n;
    mem_reads *= n;
    mem_writes *= n;
    return *this;
  }

  friend OpCount operator*(OpCount lhs, std::uint64_t n) {
    lhs *= n;
    return lhs;
  }

  /// Exact per-sample share of an aggregate recorded over `n` samples; every
  /// field must be a multiple of `n` (profiler rows accumulate identical
  /// per-sample bundles, so the division is exact there).
  OpCount& operator/=(std::uint64_t n) {
    macs /= n;
    adds /= n;
    compares /= n;
    activations /= n;
    divides /= n;
    mem_reads /= n;
    mem_writes /= n;
    return *this;
  }

  bool operator==(const OpCount&) const = default;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace cdl
