#include "nn/gemm.h"

#include <algorithm>
#include <cstring>

namespace cdl {

namespace {
// Block sizes sized for a ~32 KiB L1D: a 64x64 float tile is 16 KiB.
constexpr std::size_t kBlockM = 64;
constexpr std::size_t kBlockK = 64;
constexpr std::size_t kBlockN = 64;
}  // namespace

void sgemm(GemmDims dims, const float* a, const float* b, float* c,
           bool accumulate) {
  const std::size_t m = dims.m;
  const std::size_t k = dims.k;
  const std::size_t n = dims.n;
  if (!accumulate) std::memset(c, 0, m * n * sizeof(float));

  for (std::size_t i0 = 0; i0 < m; i0 += kBlockM) {
    const std::size_t i1 = std::min(i0 + kBlockM, m);
    for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::size_t p1 = std::min(p0 + kBlockK, k);
      for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::size_t j1 = std::min(j0 + kBlockN, n);
        for (std::size_t i = i0; i < i1; ++i) {
          float* c_row = c + i * n;
          for (std::size_t p = p0; p < p1; ++p) {
            const float a_ip = a[i * k + p];
            if (a_ip == 0.0F) continue;
            const float* b_row = b + p * n;
            for (std::size_t j = j0; j < j1; ++j) {
              c_row[j] += a_ip * b_row[j];
            }
          }
        }
      }
    }
  }
}

}  // namespace cdl
