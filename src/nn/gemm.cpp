#include "nn/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/thread_pool.h"

namespace cdl {

namespace {

// Micro-kernel tile: kMr rows of A against kNr columns of B, accumulated in
// a register tile over the full k extent. 4x8 floats = 8 SSE registers of
// accumulators, leaving room for the A broadcast and the B panel loads.
constexpr std::size_t kMr = kGemmMr;
constexpr std::size_t kNr = kGemmNr;

// Runtime-dispatched micro-kernel clones: on x86-64 ELF builds GCC emits an
// AVX2/FMA (x86-64-v3) clone next to the baseline one and selects at load
// time via ifunc, so one binary runs everywhere while wide-SIMD machines get
// the wide kernel. Everything stays plain C++ — the clones come from the
// auto-vectorizer, not intrinsics.
#if defined(__x86_64__) && defined(__ELF__) && defined(__GNUC__) && \
    !defined(__clang__)
#define CDL_GEMM_TARGET_CLONES \
  __attribute__((target_clones("arch=x86-64-v3", "default")))
#else
#define CDL_GEMM_TARGET_CLONES
#endif

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Packs B(k,n) into kNr-wide column panels: panel j holds columns
/// [j*kNr, j*kNr + kNr) as k consecutive groups of kNr floats, zero-padded
/// past column n. The micro-kernel then streams each panel contiguously.
void pack_b_panels(std::size_t k, std::size_t n, const float* b, float* pb) {
  const std::size_t panels = ceil_div(n, kNr);
  for (std::size_t panel = 0; panel < panels; ++panel) {
    const std::size_t j0 = panel * kNr;
    const std::size_t width = std::min(kNr, n - j0);
    float* dst = pb + panel * k * kNr;
    const float* src = b + j0;
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t jj = 0; jj < width; ++jj) dst[jj] = src[p * n + jj];
      for (std::size_t jj = width; jj < kNr; ++jj) dst[jj] = 0.0F;
      dst += kNr;
    }
  }
}

/// Packs `rows` (<= kMr) rows of A starting at `a` into k groups of kMr
/// floats (column-major within the panel), zero-padding missing rows.
void pack_a_panel(std::size_t k, std::size_t rows, const float* a, float* pa) {
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t r = 0; r < rows; ++r) pa[p * kMr + r] = a[r * k + p];
    for (std::size_t r = rows; r < kMr; ++r) pa[p * kMr + r] = 0.0F;
  }
}

/// acc(kMr,kNr) = packed_A(k,kMr) * packed_B(k,kNr); the 4x8 accumulator
/// tile lives in registers for the whole k loop. The 2-D tile (rather than
/// one array per row) and the __restrict qualifiers are what let GCC keep
/// the whole tile vectorized without reload checks.
CDL_GEMM_TARGET_CLONES
void micro_kernel_4x8(std::size_t k, const float* __restrict pa,
                      const float* __restrict pb, float* __restrict acc) {
  float tile[kMr][kNr] = {};
  for (std::size_t p = 0; p < k; ++p) {
    const float* bp = pb + p * kNr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const float av = pa[p * kMr + r];
      for (std::size_t jj = 0; jj < kNr; ++jj) {
        tile[r][jj] += av * bp[jj];
      }
    }
  }
  std::memcpy(acc, tile, sizeof(tile));
}

/// Same accumulation as micro_kernel_4x8, but every row of the tile starts
/// at `init` (kNr floats) instead of zero. With init = a bias vector this is
/// exactly the scalar "acc = bias; acc += w*x" chain, one lane per column.
CDL_GEMM_TARGET_CLONES
void micro_kernel_4x8_init(std::size_t k, const float* __restrict pa,
                           const float* __restrict pb,
                           const float* __restrict init,
                           float* __restrict acc) {
  float tile[kMr][kNr];
  for (std::size_t r = 0; r < kMr; ++r) {
    for (std::size_t jj = 0; jj < kNr; ++jj) tile[r][jj] = init[jj];
  }
  for (std::size_t p = 0; p < k; ++p) {
    const float* bp = pb + p * kNr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const float av = pa[p * kMr + r];
      for (std::size_t jj = 0; jj < kNr; ++jj) {
        tile[r][jj] += av * bp[jj];
      }
    }
  }
  std::memcpy(acc, tile, sizeof(tile));
}

/// Computes column panels [jp0, jp1) of C against fully pre-packed A and B
/// (overwrite semantics, optional per-column accumulator init). Column
/// panels are the parallel axis for batched operands: m is a handful of
/// output maps while n is pixels x batch.
void run_col_panels(const GemmDims& dims, const float* pa, const float* pb,
                    float* c, const float* col_init, std::size_t jp0,
                    std::size_t jp1) {
  const std::size_t m = dims.m;
  const std::size_t k = dims.k;
  const std::size_t n = dims.n;
  const std::size_t ipanels = ceil_div(m, kMr);
  for (std::size_t jp = jp0; jp < jp1; ++jp) {
    const std::size_t j0 = jp * kNr;
    const std::size_t nr = std::min(kNr, n - j0);
    float init[kNr] = {};
    if (col_init != nullptr) {
      for (std::size_t jj = 0; jj < nr; ++jj) init[jj] = col_init[j0 + jj];
    }
    for (std::size_t ip = 0; ip < ipanels; ++ip) {
      const std::size_t i0 = ip * kMr;
      const std::size_t mr = std::min(kMr, m - i0);
      float acc[kMr * kNr];
      if (col_init != nullptr) {
        micro_kernel_4x8_init(k, pa + ip * k * kMr, pb + jp * k * kNr, init,
                              acc);
      } else {
        micro_kernel_4x8(k, pa + ip * k * kMr, pb + jp * k * kNr, acc);
      }
      for (std::size_t r = 0; r < mr; ++r) {
        float* c_row = c + (i0 + r) * n + j0;
        const float* acc_row = acc + r * kNr;
        for (std::size_t jj = 0; jj < nr; ++jj) c_row[jj] = acc_row[jj];
      }
    }
  }
}

/// Computes row panels [panel0, panel1) of C against pre-packed B. The
/// write-back applies beta semantics directly (overwrite or add), so no
/// upfront memset of C is needed.
void run_row_panels(const GemmDims& dims, const float* a, const float* pb,
                    float* c, bool accumulate, std::size_t panel0,
                    std::size_t panel1) {
  const std::size_t m = dims.m;
  const std::size_t k = dims.k;
  const std::size_t n = dims.n;
  const std::size_t jpanels = ceil_div(n, kNr);
  thread_local std::vector<float> pa;
  pa.resize(k * kMr);

  for (std::size_t ip = panel0; ip < panel1; ++ip) {
    const std::size_t i0 = ip * kMr;
    const std::size_t mr = std::min(kMr, m - i0);
    pack_a_panel(k, mr, a + i0 * k, pa.data());
    for (std::size_t jp = 0; jp < jpanels; ++jp) {
      const std::size_t j0 = jp * kNr;
      const std::size_t nr = std::min(kNr, n - j0);
      float acc[kMr * kNr];
      micro_kernel_4x8(k, pa.data(), pb + jp * k * kNr, acc);
      for (std::size_t r = 0; r < mr; ++r) {
        float* c_row = c + (i0 + r) * n + j0;
        const float* acc_row = acc + r * kNr;
        if (accumulate) {
          for (std::size_t jj = 0; jj < nr; ++jj) c_row[jj] += acc_row[jj];
        } else {
          for (std::size_t jj = 0; jj < nr; ++jj) c_row[jj] = acc_row[jj];
        }
      }
    }
  }
}

/// Degenerate-dimension handling shared by both entry points. Returns true
/// when the call is already fully handled.
bool handle_trivial(const GemmDims& dims, float* c, bool accumulate) {
  if (dims.m == 0 || dims.n == 0) return true;
  if (dims.k == 0) {
    // beta = 0: an empty product overwrites C with zeros.
    if (!accumulate) std::memset(c, 0, dims.m * dims.n * sizeof(float));
    return true;
  }
  return false;
}

}  // namespace

void sgemm(GemmDims dims, const float* a, const float* b, float* c,
           bool accumulate) {
  if (handle_trivial(dims, c, accumulate)) return;
  thread_local std::vector<float> pb;
  pb.resize(ceil_div(dims.n, kNr) * dims.k * kNr);
  pack_b_panels(dims.k, dims.n, b, pb.data());
  run_row_panels(dims, a, pb.data(), c, accumulate, 0, ceil_div(dims.m, kMr));
}

void sgemm_parallel(GemmDims dims, const float* a, const float* b, float* c,
                    ThreadPool& pool, bool accumulate) {
  if (pool.size() <= 1) {
    sgemm(dims, a, b, c, accumulate);
    return;
  }
  if (handle_trivial(dims, c, accumulate)) return;
  thread_local std::vector<float> pb;
  pb.resize(ceil_div(dims.n, kNr) * dims.k * kNr);
  pack_b_panels(dims.k, dims.n, b, pb.data());
  // The packed-B pointer must be hoisted out of the lambda: `pb` is
  // thread_local, so naming it inside the worker body would resolve to the
  // worker's own (empty) instance.
  const float* packed_b = pb.data();
  // Workers own disjoint row panels, so writes never overlap, and each row
  // accumulates in the same order as the serial kernel -> bit-identical.
  pool.parallel_for(0, ceil_div(dims.m, kMr),
                    [&](std::size_t, std::size_t p0, std::size_t p1) {
                      run_row_panels(dims, a, packed_b, c, accumulate, p0, p1);
                    });
}

std::size_t gemm_packed_a_floats(std::size_t m, std::size_t k) {
  return ceil_div(m, kMr) * k * kMr;
}

std::size_t gemm_packed_b_floats(std::size_t k, std::size_t n) {
  return ceil_div(n, kNr) * k * kNr;
}

void gemm_pack_a(std::size_t m, std::size_t k, const float* a, float* pa) {
  const std::size_t panels = ceil_div(m, kMr);
  for (std::size_t ip = 0; ip < panels; ++ip) {
    const std::size_t i0 = ip * kMr;
    const std::size_t rows = std::min(kMr, m - i0);
    pack_a_panel(k, rows, a + i0 * k, pa + ip * k * kMr);
  }
}

void gemm_pack_b(std::size_t k, std::size_t n, const float* b, float* pb) {
  pack_b_panels(k, n, b, pb);
}

void gemm_pack_b_transposed(std::size_t k, std::size_t n, const float* src,
                            float* pb) {
  // Logical B(p, j) = src[j * k + p]: panel reads walk rows of src, so each
  // lane streams one contiguous weight row.
  const std::size_t panels = ceil_div(n, kNr);
  for (std::size_t panel = 0; panel < panels; ++panel) {
    const std::size_t j0 = panel * kNr;
    const std::size_t width = std::min(kNr, n - j0);
    float* dst = pb + panel * k * kNr;
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t jj = 0; jj < width; ++jj) {
        dst[p * kNr + jj] = src[(j0 + jj) * k + p];
      }
      for (std::size_t jj = width; jj < kNr; ++jj) dst[p * kNr + jj] = 0.0F;
    }
  }
}

void sgemm_packed(GemmDims dims, const float* pa, const float* pb, float* c,
                  const float* col_init, ThreadPool* pool) {
  if (dims.m == 0 || dims.n == 0) return;
  if (dims.k == 0) {
    for (std::size_t i = 0; i < dims.m; ++i) {
      for (std::size_t j = 0; j < dims.n; ++j) {
        c[i * dims.n + j] = col_init == nullptr ? 0.0F : col_init[j];
      }
    }
    return;
  }
  const std::size_t jpanels = ceil_div(dims.n, kNr);
  if (pool == nullptr || pool->size() <= 1 || jpanels == 1) {
    run_col_panels(dims, pa, pb, c, col_init, 0, jpanels);
    return;
  }
  // Workers own disjoint column panels; every output element accumulates in
  // the same k order regardless of the split -> bit-identical to serial.
  // Single-reference capture keeps the ChunkFn in std::function's
  // small-object buffer: no allocation even when threaded.
  struct Ctx {
    const GemmDims* dims;
    const float* pa;
    const float* pb;
    float* c;
    const float* col_init;
  } ctx{&dims, pa, pb, c, col_init};
  pool->parallel_for(0, jpanels,
                     [&ctx](std::size_t, std::size_t jp0, std::size_t jp1) {
                       run_col_panels(*ctx.dims, ctx.pa, ctx.pb, ctx.c,
                                      ctx.col_init, jp0, jp1);
                     });
}

void sgemm_blocked_reference(GemmDims dims, const float* a, const float* b,
                             float* c, bool accumulate) {
  // Block sizes sized for a ~32 KiB L1D: a 64x64 float tile is 16 KiB.
  constexpr std::size_t kBlockM = 64;
  constexpr std::size_t kBlockK = 64;
  constexpr std::size_t kBlockN = 64;
  const std::size_t m = dims.m;
  const std::size_t k = dims.k;
  const std::size_t n = dims.n;
  if (!accumulate) std::memset(c, 0, m * n * sizeof(float));

  for (std::size_t i0 = 0; i0 < m; i0 += kBlockM) {
    const std::size_t i1 = std::min(i0 + kBlockM, m);
    for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::size_t p1 = std::min(p0 + kBlockK, k);
      for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::size_t j1 = std::min(j0 + kBlockN, n);
        for (std::size_t i = i0; i < i1; ++i) {
          float* c_row = c + i * n;
          for (std::size_t p = p0; p < p1; ++p) {
            const float a_ip = a[i * k + p];
            if (a_ip == 0.0F) continue;
            const float* b_row = b + p * n;
            for (std::size_t j = j0; j < j1; ++j) {
              c_row[j] += a_ip * b_row[j];
            }
          }
        }
      }
    }
  }
}

}  // namespace cdl
