// Loss functions over a single sample's output scores.
//
// SoftmaxCrossEntropy is used to train the baseline DLNs; MseLoss implements
// the least-mean-square objective the paper trains its linear classifiers
// with (delta rule on one-hot targets).
#pragma once

#include <cstddef>
#include <string>

#include "core/tensor.h"

namespace cdl {

class Loss {
 public:
  virtual ~Loss() = default;

  /// Scalar loss of `scores` against the integer class `target`.
  [[nodiscard]] virtual float value(const Tensor& scores,
                                    std::size_t target) const = 0;

  /// d-loss / d-scores.
  [[nodiscard]] virtual Tensor grad(const Tensor& scores,
                                    std::size_t target) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Cross-entropy of softmax(scores) against the target class. The gradient
/// folds softmax and cross-entropy together (p - onehot), so the network's
/// final layer must emit raw logits.
class SoftmaxCrossEntropyLoss final : public Loss {
 public:
  [[nodiscard]] float value(const Tensor& scores, std::size_t target) const override;
  [[nodiscard]] Tensor grad(const Tensor& scores, std::size_t target) const override;
  [[nodiscard]] std::string name() const override { return "softmax_xent"; }
};

/// Mean squared error of scores against the one-hot target vector. Training a
/// linear layer with SGD on this loss is exactly the Widrow-Hoff LMS rule.
class MseLoss final : public Loss {
 public:
  [[nodiscard]] float value(const Tensor& scores, std::size_t target) const override;
  [[nodiscard]] Tensor grad(const Tensor& scores, std::size_t target) const override;
  [[nodiscard]] std::string name() const override { return "mse"; }
};

}  // namespace cdl
