#include "nn/im2col.h"

#include <stdexcept>

#include "nn/gemm.h"

namespace cdl {

void im2col_into(const Tensor& input, std::size_t kernel, Tensor& cols) {
  if (input.shape().rank() != 3) {
    throw std::invalid_argument("im2col: expected CHW input, got " +
                                input.shape().to_string());
  }
  const std::size_t c = input.shape()[0];
  const std::size_t h = input.shape()[1];
  const std::size_t w = input.shape()[2];
  if (kernel == 0 || h < kernel || w < kernel) {
    throw std::invalid_argument("im2col: kernel " + std::to_string(kernel) +
                                " too large for input " +
                                input.shape().to_string());
  }
  const std::size_t oh = h - kernel + 1;
  const std::size_t ow = w - kernel + 1;
  const std::size_t patch = c * kernel * kernel;
  const std::size_t pixels = oh * ow;

  cols.resize(Shape{patch, pixels});
  float* out = cols.data();
  for (std::size_t ch = 0; ch < c; ++ch) {
    for (std::size_t ky = 0; ky < kernel; ++ky) {
      for (std::size_t kx = 0; kx < kernel; ++kx) {
        // Row r of the column matrix: input value (ch, y+ky, x+kx) for every
        // output pixel (y, x), in row-major pixel order.
        float* row = out + ((ch * kernel + ky) * kernel + kx) * pixels;
        for (std::size_t y = 0; y < oh; ++y) {
          const float* in_row = input.data() + (ch * h + y + ky) * w + kx;
          for (std::size_t x = 0; x < ow; ++x) {
            row[y * ow + x] = in_row[x];
          }
        }
      }
    }
  }
}

Tensor im2col(const Tensor& input, std::size_t kernel) {
  Tensor cols;
  im2col_into(input, kernel, cols);
  return cols;
}

namespace {

void check_batched_geometry(std::size_t h, std::size_t w, std::size_t kernel) {
  if (kernel == 0 || h < kernel || w < kernel) {
    throw std::invalid_argument("im2col_pack_panels: kernel " +
                                std::to_string(kernel) +
                                " too large for input " + std::to_string(h) +
                                "x" + std::to_string(w));
  }
}

}  // namespace

std::size_t im2col_panel_count(std::size_t h, std::size_t w,
                               std::size_t kernel, std::size_t count) {
  check_batched_geometry(h, w, kernel);
  const std::size_t pixels = (h - kernel + 1) * (w - kernel + 1);
  return (count * pixels + kGemmNr - 1) / kGemmNr;
}

void im2col_pack_panels(const float* images, std::size_t count, std::size_t c,
                        std::size_t h, std::size_t w, std::size_t kernel,
                        float* pb, std::size_t panel_begin,
                        std::size_t panel_end) {
  check_batched_geometry(h, w, kernel);
  const std::size_t ow = w - kernel + 1;
  const std::size_t oh = h - kernel + 1;
  const std::size_t pixels = oh * ow;
  const std::size_t patch = c * kernel * kernel;
  const std::size_t cols = count * pixels;
  const std::size_t img_floats = c * h * w;

  for (std::size_t panel = panel_begin; panel < panel_end; ++panel) {
    const std::size_t j0 = panel * kGemmNr;
    // Decompose each lane's global column into (image, output y, output x)
    // once per panel; the k loop below then only adds kernel offsets.
    const float* lane_base[kGemmNr];
    std::size_t lane_y[kGemmNr];
    std::size_t lane_x[kGemmNr];
    std::size_t width = 0;
    for (std::size_t jj = 0; jj < kGemmNr && j0 + jj < cols; ++jj, ++width) {
      const std::size_t col = j0 + jj;
      const std::size_t img = col / pixels;
      const std::size_t pix = col % pixels;
      lane_base[jj] = images + img * img_floats;
      lane_y[jj] = pix / ow;
      lane_x[jj] = pix % ow;
    }
    float* dst = pb + panel * patch * kGemmNr;
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t ky = 0; ky < kernel; ++ky) {
        for (std::size_t kx = 0; kx < kernel; ++kx) {
          for (std::size_t jj = 0; jj < width; ++jj) {
            dst[jj] = lane_base[jj][(ch * h + lane_y[jj] + ky) * w +
                                    lane_x[jj] + kx];
          }
          for (std::size_t jj = width; jj < kGemmNr; ++jj) dst[jj] = 0.0F;
          dst += kGemmNr;
        }
      }
    }
  }
}

}  // namespace cdl
