#include "nn/im2col.h"

#include <stdexcept>

namespace cdl {

void im2col_into(const Tensor& input, std::size_t kernel, Tensor& cols) {
  if (input.shape().rank() != 3) {
    throw std::invalid_argument("im2col: expected CHW input, got " +
                                input.shape().to_string());
  }
  const std::size_t c = input.shape()[0];
  const std::size_t h = input.shape()[1];
  const std::size_t w = input.shape()[2];
  if (kernel == 0 || h < kernel || w < kernel) {
    throw std::invalid_argument("im2col: kernel " + std::to_string(kernel) +
                                " too large for input " +
                                input.shape().to_string());
  }
  const std::size_t oh = h - kernel + 1;
  const std::size_t ow = w - kernel + 1;
  const std::size_t patch = c * kernel * kernel;
  const std::size_t pixels = oh * ow;

  cols.resize(Shape{patch, pixels});
  float* out = cols.data();
  for (std::size_t ch = 0; ch < c; ++ch) {
    for (std::size_t ky = 0; ky < kernel; ++ky) {
      for (std::size_t kx = 0; kx < kernel; ++kx) {
        // Row r of the column matrix: input value (ch, y+ky, x+kx) for every
        // output pixel (y, x), in row-major pixel order.
        float* row = out + ((ch * kernel + ky) * kernel + kx) * pixels;
        for (std::size_t y = 0; y < oh; ++y) {
          const float* in_row = input.data() + (ch * h + y + ky) * w + kx;
          for (std::size_t x = 0; x < ow; ++x) {
            row[y * ow + x] = in_row[x];
          }
        }
      }
    }
  }
}

Tensor im2col(const Tensor& input, std::size_t kernel) {
  Tensor cols;
  im2col_into(input, kernel, cols);
  return cols;
}

}  // namespace cdl
