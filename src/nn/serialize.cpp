#include "nn/serialize.h"

#include <array>
#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace cdl {

namespace {

constexpr std::array<char, 4> kMagic = {'C', 'D', 'L', 'W'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("serialize: truncated stream");
  return value;
}

}  // namespace

void save_parameters(std::ostream& os, const std::vector<Tensor*>& params) {
  os.write(kMagic.data(), kMagic.size());
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint64_t>(params.size()));
  for (const Tensor* t : params) {
    write_pod(os, static_cast<std::uint32_t>(t->shape().rank()));
    for (std::size_t d : t->shape().dims()) {
      write_pod(os, static_cast<std::uint64_t>(d));
    }
    os.write(reinterpret_cast<const char*>(t->data()),
             static_cast<std::streamsize>(t->numel() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("serialize: write failure");
}

void load_parameters(std::istream& is, const std::vector<Tensor*>& params) {
  std::array<char, 4> magic{};
  is.read(magic.data(), magic.size());
  if (!is || magic != kMagic) {
    throw std::runtime_error("serialize: bad magic (not a CDLW file)");
  }
  const auto version = read_pod<std::uint32_t>(is);
  if (version != kVersion) {
    throw std::runtime_error("serialize: unsupported version " +
                             std::to_string(version));
  }
  const auto count = read_pod<std::uint64_t>(is);
  if (count != params.size()) {
    throw std::runtime_error("serialize: file has " + std::to_string(count) +
                             " tensors, network expects " +
                             std::to_string(params.size()));
  }
  for (Tensor* t : params) {
    const auto rank = read_pod<std::uint32_t>(is);
    std::vector<std::size_t> dims(rank);
    for (auto& d : dims) d = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
    const Shape shape{dims};
    if (shape != t->shape()) {
      throw std::runtime_error("serialize: shape mismatch, file " +
                               shape.to_string() + " vs network " +
                               t->shape().to_string());
    }
    is.read(reinterpret_cast<char*>(t->data()),
            static_cast<std::streamsize>(t->numel() * sizeof(float)));
    if (!is) throw std::runtime_error("serialize: truncated tensor data");
  }
}

void save_network(const std::string& path, Network& net) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("serialize: cannot open " + path);
  save_parameters(os, net.parameters());
}

void load_network(const std::string& path, Network& net) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("serialize: cannot open " + path);
  load_parameters(is, net.parameters());
}

}  // namespace cdl
