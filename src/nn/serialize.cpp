#include "nn/serialize.h"

#include <array>
#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace cdl {

namespace {

constexpr std::array<char, 4> kMagic = {'C', 'D', 'L', 'W'};
constexpr std::uint32_t kVersion = 1;

// Sanity bounds for untrusted headers: a corrupted rank/dim/count field must
// produce a clean error, not a multi-gigabyte allocation attempt.
constexpr std::uint32_t kMaxRank = 8;
constexpr std::uint64_t kMaxTensors = 1U << 20;
constexpr std::uint64_t kMaxElements = 1ULL << 31;

template <typename T>
void write_pod(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("serialize: truncated stream");
  return value;
}

}  // namespace

void save_parameters(std::ostream& os, const std::vector<Tensor*>& params) {
  os.write(kMagic.data(), kMagic.size());
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint64_t>(params.size()));
  for (const Tensor* t : params) {
    write_pod(os, static_cast<std::uint32_t>(t->shape().rank()));
    for (std::size_t d : t->shape().dims()) {
      write_pod(os, static_cast<std::uint64_t>(d));
    }
    os.write(reinterpret_cast<const char*>(t->data()),
             static_cast<std::streamsize>(t->numel() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("serialize: write failure");
}

void load_parameters(std::istream& is, const std::vector<Tensor*>& params) {
  std::array<char, 4> magic{};
  is.read(magic.data(), magic.size());
  if (!is || magic != kMagic) {
    throw std::runtime_error("serialize: bad magic (not a CDLW file)");
  }
  const auto version = read_pod<std::uint32_t>(is);
  if (version != kVersion) {
    throw std::runtime_error("serialize: unsupported version " +
                             std::to_string(version));
  }
  const auto count = read_pod<std::uint64_t>(is);
  if (count > kMaxTensors) {
    throw std::runtime_error("serialize: implausible tensor count " +
                             std::to_string(count));
  }
  if (count != params.size()) {
    throw std::runtime_error("serialize: file has " + std::to_string(count) +
                             " tensors, network expects " +
                             std::to_string(params.size()));
  }
  for (Tensor* t : params) {
    const auto rank = read_pod<std::uint32_t>(is);
    if (rank == 0 || rank > kMaxRank) {
      throw std::runtime_error("serialize: implausible tensor rank " +
                               std::to_string(rank));
    }
    std::vector<std::size_t> dims(rank);
    std::uint64_t numel = 1;
    for (auto& d : dims) {
      const auto dim = read_pod<std::uint64_t>(is);
      if (dim == 0 || dim > kMaxElements || numel > kMaxElements / dim) {
        throw std::runtime_error("serialize: implausible tensor dimensions");
      }
      numel *= dim;
      d = static_cast<std::size_t>(dim);
    }
    const Shape shape{dims};
    if (shape != t->shape()) {
      throw std::runtime_error("serialize: shape mismatch, file " +
                               shape.to_string() + " vs network " +
                               t->shape().to_string());
    }
    is.read(reinterpret_cast<char*>(t->data()),
            static_cast<std::streamsize>(t->numel() * sizeof(float)));
    if (!is) throw std::runtime_error("serialize: truncated tensor data");
  }
}

void save_network(const std::string& path, Network& net) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("serialize: cannot open " + path);
  save_parameters(os, net.parameters());
}

void load_network(const std::string& path, Network& net) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("serialize: cannot open " + path);
  load_parameters(is, net.parameters());
}

}  // namespace cdl
