#include "nn/network.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "core/thread_pool.h"
#include "core/workspace.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/pool2d.h"
#include "obs/layer_profile.h"
#include "obs/trace.h"

namespace cdl {

std::size_t Network::add(LayerPtr layer) {
  if (!layer) throw std::invalid_argument("Network::add: null layer");
  layers_.push_back(std::move(layer));
  return layers_.size() - 1;
}

void Network::check_range(std::size_t begin, std::size_t end) const {
  if (begin > end || end > layers_.size()) {
    throw std::out_of_range("Network: bad layer range [" +
                            std::to_string(begin) + ", " + std::to_string(end) +
                            ") of " + std::to_string(layers_.size()));
  }
}

Tensor Network::forward(const Tensor& input) {
  return forward_range(input, 0, layers_.size());
}

Tensor Network::forward_range(const Tensor& input, std::size_t begin,
                              std::size_t end) {
  check_range(begin, end);
  Tensor x = input;
  for (std::size_t i = begin; i < end; ++i) x = layers_[i]->forward(x);
  return x;
}

Tensor Network::infer(const Tensor& input) const {
  return infer_range(input, 0, layers_.size());
}

Tensor Network::infer_range(const Tensor& input, std::size_t begin,
                            std::size_t end) const {
  check_range(begin, end);
  CDL_TRACE_SPAN(span, "infer_range", static_cast<std::int32_t>(end));
  const bool profiling = obs::LayerProfiler::enabled();
  const std::int32_t prof_stage =
      profiling ? obs::LayerProfiler::current_stage() : obs::kNoStage;
  Tensor x = input;
  for (std::size_t i = begin; i < end; ++i) {
    if (!profiling) {
      x = layers_[i]->infer(x);
      continue;
    }
    const std::uint64_t t0 = obs::now_ns();
    Tensor y = layers_[i]->infer(x);
    const std::uint64_t t1 = obs::now_ns();
    obs::LayerProfiler::instance().record(
        prof_stage, static_cast<std::int32_t>(i), layers_[i]->name(), 1, 1,
        layers_[i]->forward_ops(x.shape()), t1 - t0);
    x = std::move(y);
  }
  return x;
}

BlockPlan Network::plan_block_range(const Shape& in_shape, std::size_t begin,
                                    std::size_t end, std::size_t count,
                                    std::size_t workers) const {
  check_range(begin, end);
  if (count == 0) throw std::invalid_argument("plan_block_range: count == 0");
  if (workers == 0) workers = 1;
  BlockPlan plan;
  plan.begin = begin;
  plan.end = end;
  plan.count = count;
  plan.workers = workers;
  plan.in_floats = in_shape.numel();

  Shape s = in_shape;
  std::size_t i = begin;
  while (i < end) {
    BlockStep step;
    step.first = i;
    step.in_shape = s;
    const auto* conv = dynamic_cast<const Conv2D*>(layers_[i].get());
    if (conv != nullptr && conv->block_lowered() && i + 2 < end) {
      const auto* act =
          dynamic_cast<const ElementwiseActivation*>(layers_[i + 1].get());
      const auto* pool = dynamic_cast<const Pool2D*>(layers_[i + 2].get());
      if (act != nullptr && act->monotone_nondecreasing() && pool != nullptr &&
          pool->mode() == PoolMode::kMax) {
        const Shape conv_out = conv->output_shape(s);
        if (conv_out[1] % pool->window() == 0 &&
            conv_out[2] % pool->window() == 0) {
          step.span = 3;
          step.conv_out = conv_out;
          step.out_shape = pool->output_shape(conv_out);
        }
      }
    }
    std::size_t scratch = 0;
    if (step.span == 3) {
      // Fused per-image execution: each worker holds one raw conv output
      // image (plus one padded image when the conv pads) — a cache-resident
      // working set independent of the tile size, instead of the former
      // batch-sized interleaved block.
      const std::size_t pad2 = 2 * conv->geometry().padding;
      std::size_t per_worker = align_floats(step.conv_out.numel());
      if (pad2 != 0) {
        per_worker += align_floats(s[0] * (s[1] + pad2) * (s[2] + pad2));
      }
      scratch = workers * per_worker;
    } else {
      step.out_shape = layers_[i]->output_shape(s);
      scratch = layers_[i]->infer_block_scratch_floats(s, count, workers);
    }
    plan.step_scratch_floats = std::max(plan.step_scratch_floats, scratch);
    OpCount step_ops;
    Shape model_shape = s;
    for (std::size_t j = i; j < i + step.span; ++j) {
      if (j > i) step.name += '+';
      step.name += layers_[j]->name();
      step_ops += layers_[j]->forward_ops(model_shape);
      model_shape = layers_[j]->output_shape(model_shape);
    }
    step.op_count = step_ops;
    step.ops = step_ops.total_compute();
    s = step.out_shape;
    i += step.span;
    plan.steps.push_back(std::move(step));
  }
  plan.out_floats = s.numel();
  // Inter-step ping/pong buffers: every boundary except the final output.
  for (std::size_t k = 0; k + 1 < plan.steps.size(); ++k) {
    plan.ping_floats = std::max(
        plan.ping_floats, align_floats(plan.steps[k].out_shape.numel() * count));
  }
  return plan;
}

void Network::infer_block_range(const BlockPlan& plan, const float* in,
                                float* out, std::size_t count, float* scratch,
                                ThreadPool* pool) const {
  if (count == 0) return;
  if (count > plan.count ||
      (pool != nullptr && pool->size() > plan.workers)) {
    throw std::invalid_argument(
        "Network::infer_block_range: tile exceeds plan capacity");
  }
  const bool threaded = pool != nullptr && pool->size() > 1;
  if (plan.steps.empty()) {
    if (out != in) std::memcpy(out, in, count * plan.in_floats * sizeof(float));
    return;
  }
  const bool profiling = obs::LayerProfiler::enabled();
  const std::int32_t prof_stage =
      profiling ? obs::LayerProfiler::current_stage() : obs::kNoStage;
  float* ping = scratch;
  float* pong = scratch + plan.ping_floats;
  float* step_scratch = scratch + 2 * plan.ping_floats;
  const float* cur = in;
  const std::size_t last = plan.steps.size() - 1;
  for (std::size_t s = 0; s < plan.steps.size(); ++s) {
    const BlockStep& step = plan.steps[s];
    const std::uint64_t prof_t0 = profiling ? obs::now_ns() : 0;
    float* dst = s == last ? out : (s % 2 == 0 ? ping : pong);
    if (step.span == 3) {
      const auto& conv = static_cast<const Conv2D&>(*layers_[step.first]);
      const auto& act =
          static_cast<const ElementwiseActivation&>(*layers_[step.first + 1]);
      const auto& pl = static_cast<const Pool2D&>(*layers_[step.first + 2]);
      // Fully fused per image: conv -> raw CHW image in the worker's
      // scratch slice -> max-pool -> bulk activation map, all before moving
      // to the next image, so the raw conv output never leaves the worker's
      // cache. Pooling raw values first does ~window^2
      // fewer activation evaluations (max(act(x)) == act(max(x)) bit-
      // exactly for the monotone activations the plan admits), and the
      // map's vector lanes match apply() element for element, so any
      // (batch, tile, thread) split is bit-identical to the serial path.
      const std::size_t pad2 = 2 * conv.geometry().padding;
      std::size_t per_worker = align_floats(step.conv_out.numel());
      if (pad2 != 0) {
        per_worker += align_floats(step.in_shape[0] *
                                   (step.in_shape[1] + pad2) *
                                   (step.in_shape[2] + pad2));
      }
      struct FusedCtx {
        const Conv2D* conv;
        const ElementwiseActivation* act;
        const Pool2D* pool;
        const float* in;
        float* dst;
        float* scratch;
        std::size_t per_worker, raw_floats, in_floats, h, w;
        std::size_t pixels, out_c, ch, cw, out_floats;
        bool pad;
      } ctx{&conv,
            &act,
            &pl,
            cur,
            dst,
            step_scratch,
            per_worker,
            align_floats(step.conv_out.numel()),
            step.in_shape.numel(),
            step.in_shape[1],
            step.in_shape[2],
            step.conv_out[1] * step.conv_out[2],
            step.conv_out[0],
            step.conv_out[1],
            step.conv_out[2],
            step.out_shape.numel(),
            pad2 != 0};
      const auto run = [&ctx](std::size_t worker, std::size_t b,
                              std::size_t e) {
        float* raw = ctx.scratch + worker * ctx.per_worker;
        float* padded = ctx.pad ? raw + ctx.raw_floats : nullptr;
        for (std::size_t i = b; i < e; ++i) {
          ctx.conv->conv_image(ctx.in + i * ctx.in_floats, ctx.h, ctx.w, raw,
                               padded);
          float* out_img = ctx.dst + i * ctx.out_floats;
          ctx.pool->pool_image(raw, ctx.pixels, ctx.out_c, ctx.ch, ctx.cw,
                               out_img);
          ctx.act->map(out_img, out_img, ctx.out_floats);
        }
      };
      if (threaded) {
        pool->parallel_for(0, count, run);
      } else {
        run(0, 0, count);
      }
    } else {
      layers_[step.first]->infer_block(step.in_shape, cur, dst, count,
                                       step_scratch, pool);
    }
    if (profiling) {
      obs::LayerProfiler::instance().record(
          prof_stage, static_cast<std::int32_t>(step.first), step.name,
          step.span, count, step.op_count * count, obs::now_ns() - prof_t0);
    }
    cur = dst;
  }
}

std::size_t Network::infer_block_scratch_floats(const Shape& in_shape,
                                                std::size_t begin,
                                                std::size_t end,
                                                std::size_t count,
                                                std::size_t workers) const {
  return plan_block_range(in_shape, begin, end, count, workers)
      .scratch_floats();
}

void Network::infer_block_range(const Shape& in_shape, const float* in,
                                float* out, std::size_t count,
                                std::size_t begin, std::size_t end,
                                float* scratch, ThreadPool* pool) const {
  const BlockPlan plan = plan_block_range(
      in_shape, begin, end, count == 0 ? 1 : count,
      pool != nullptr ? pool->size() : 1);
  infer_block_range(plan, in, out, count, scratch, pool);
}

std::vector<Tensor> Network::forward_batch(const std::vector<Tensor>& inputs,
                                           ThreadPool* pool) const {
  CDL_TRACE_SPAN(span, "forward_batch",
                 static_cast<std::int32_t>(inputs.size()));
  std::vector<Tensor> outputs(inputs.size());
  if (inputs.empty()) return outputs;
  bool uniform = !layers_.empty();
  const Shape& in_shape = inputs[0].shape();
  for (std::size_t i = 1; uniform && i < inputs.size(); ++i) {
    uniform = inputs[i].shape() == in_shape;
  }
  if (!uniform) {
    // Mixed-shape batches keep the per-image path.
    const auto run = [&](std::size_t, std::size_t chunk_begin,
                         std::size_t chunk_end) {
      for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
        outputs[i] = infer(inputs[i]);
      }
    };
    if (pool != nullptr && pool->size() > 1) {
      pool->parallel_for(0, inputs.size(), run);
    } else {
      run(0, 0, inputs.size());
    }
    return outputs;
  }
  // Uniform batch: stage-resident tiles. Parallelism is over batch chunks
  // (one per worker); each worker runs whole tiles serially, which keeps the
  // parallel grain coarse — one conv GEMM per tile instead of per image.
  constexpr std::size_t kTile = 64;
  const Shape out_shape = output_shape(in_shape);
  const BlockPlan plan = plan_block_range(
      in_shape, 0, layers_.size(), std::min(kTile, inputs.size()), 1);
  struct BatchCtx {
    const Network* net;
    const BlockPlan* plan;
    const std::vector<Tensor>* inputs;
    std::vector<Tensor>* outputs;
    const Shape* out_shape;
    std::size_t in_floats, out_floats, tile;
  } ctx{this,
        &plan,
        &inputs,
        &outputs,
        &out_shape,
        in_shape.numel(),
        out_shape.numel(),
        plan.count};
  const auto run = [&ctx](std::size_t, std::size_t chunk_begin,
                          std::size_t chunk_end) {
    thread_local std::vector<float> scratch;
    thread_local std::vector<float> block_in;
    thread_local std::vector<float> block_out;
    scratch.resize(ctx.plan->scratch_floats());
    block_in.resize(ctx.tile * ctx.in_floats);
    block_out.resize(ctx.tile * ctx.out_floats);
    for (std::size_t t = chunk_begin; t < chunk_end; t += ctx.tile) {
      const std::size_t n = std::min(ctx.tile, chunk_end - t);
      for (std::size_t i = 0; i < n; ++i) {
        std::memcpy(block_in.data() + i * ctx.in_floats,
                    (*ctx.inputs)[t + i].data(),
                    ctx.in_floats * sizeof(float));
      }
      ctx.net->infer_block_range(*ctx.plan, block_in.data(), block_out.data(),
                                 n, scratch.data(), nullptr);
      for (std::size_t i = 0; i < n; ++i) {
        Tensor& dst = (*ctx.outputs)[t + i];
        dst.resize(*ctx.out_shape);
        std::memcpy(dst.data(), block_out.data() + i * ctx.out_floats,
                    ctx.out_floats * sizeof(float));
      }
    }
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(0, inputs.size(), run);
  } else {
    run(0, 0, inputs.size());
  }
  return outputs;
}

Tensor Network::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) g = layers_[i]->backward(g);
  return g;
}

std::vector<Tensor*> Network::parameters() {
  std::vector<Tensor*> out;
  for (const auto& l : layers_) {
    for (Tensor* p : l->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Network::gradients() {
  std::vector<Tensor*> out;
  for (const auto& l : layers_) {
    for (Tensor* g : l->gradients()) out.push_back(g);
  }
  return out;
}

void Network::zero_gradients() {
  for (const auto& l : layers_) l->zero_gradients();
}

std::vector<Network::ParamInfo> Network::parameter_info() {
  std::vector<ParamInfo> out;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const std::size_t count = layers_[i]->parameters().size();
    for (std::size_t k = 0; k < count; ++k) {
      ParamInfo info;
      info.layer = i;
      info.layer_name = layers_[i]->name();
      // Every trainable layer in the library stores {weights, bias}.
      if (count == 2) {
        info.param_name = k == 0 ? "w" : "b";
      } else {
        info.param_name = "p" + std::to_string(k);
      }
      out.push_back(std::move(info));
    }
  }
  return out;
}

void Network::init(Rng& rng) {
  for (const auto& l : layers_) l->init(rng);
}

Shape Network::output_shape(const Shape& input_shape) const {
  return output_shape_after(input_shape, layers_.size());
}

Shape Network::output_shape_after(const Shape& input_shape,
                                  std::size_t count) const {
  check_range(0, count);
  Shape s = input_shape;
  for (std::size_t i = 0; i < count; ++i) s = layers_[i]->output_shape(s);
  return s;
}

std::vector<OpCount> Network::layer_ops(const Shape& input_shape) const {
  std::vector<OpCount> out;
  out.reserve(layers_.size());
  Shape s = input_shape;
  for (const auto& l : layers_) {
    out.push_back(l->forward_ops(s));
    s = l->output_shape(s);
  }
  return out;
}

OpCount Network::forward_ops(const Shape& input_shape) const {
  OpCount total;
  for (const OpCount& ops : layer_ops(input_shape)) total += ops;
  return total;
}

std::string Network::summary() const {
  std::string s;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i != 0) s += " -> ";
    s += layers_[i]->name();
  }
  return s;
}

}  // namespace cdl
