#include "nn/network.h"

#include <stdexcept>

#include "core/thread_pool.h"
#include "obs/trace.h"

namespace cdl {

std::size_t Network::add(LayerPtr layer) {
  if (!layer) throw std::invalid_argument("Network::add: null layer");
  layers_.push_back(std::move(layer));
  return layers_.size() - 1;
}

void Network::check_range(std::size_t begin, std::size_t end) const {
  if (begin > end || end > layers_.size()) {
    throw std::out_of_range("Network: bad layer range [" +
                            std::to_string(begin) + ", " + std::to_string(end) +
                            ") of " + std::to_string(layers_.size()));
  }
}

Tensor Network::forward(const Tensor& input) {
  return forward_range(input, 0, layers_.size());
}

Tensor Network::forward_range(const Tensor& input, std::size_t begin,
                              std::size_t end) {
  check_range(begin, end);
  Tensor x = input;
  for (std::size_t i = begin; i < end; ++i) x = layers_[i]->forward(x);
  return x;
}

Tensor Network::infer(const Tensor& input) const {
  return infer_range(input, 0, layers_.size());
}

Tensor Network::infer_range(const Tensor& input, std::size_t begin,
                            std::size_t end) const {
  check_range(begin, end);
  CDL_TRACE_SPAN(span, "infer_range", static_cast<std::int32_t>(end));
  Tensor x = input;
  for (std::size_t i = begin; i < end; ++i) x = layers_[i]->infer(x);
  return x;
}

std::vector<Tensor> Network::forward_batch(const std::vector<Tensor>& inputs,
                                           ThreadPool* pool) const {
  CDL_TRACE_SPAN(span, "forward_batch",
                 static_cast<std::int32_t>(inputs.size()));
  std::vector<Tensor> outputs(inputs.size());
  const auto run = [&](std::size_t, std::size_t chunk_begin,
                       std::size_t chunk_end) {
    for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
      outputs[i] = infer(inputs[i]);
    }
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(0, inputs.size(), run);
  } else {
    run(0, 0, inputs.size());
  }
  return outputs;
}

Tensor Network::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) g = layers_[i]->backward(g);
  return g;
}

std::vector<Tensor*> Network::parameters() {
  std::vector<Tensor*> out;
  for (const auto& l : layers_) {
    for (Tensor* p : l->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Network::gradients() {
  std::vector<Tensor*> out;
  for (const auto& l : layers_) {
    for (Tensor* g : l->gradients()) out.push_back(g);
  }
  return out;
}

void Network::zero_gradients() {
  for (const auto& l : layers_) l->zero_gradients();
}

void Network::init(Rng& rng) {
  for (const auto& l : layers_) l->init(rng);
}

Shape Network::output_shape(const Shape& input_shape) const {
  return output_shape_after(input_shape, layers_.size());
}

Shape Network::output_shape_after(const Shape& input_shape,
                                  std::size_t count) const {
  check_range(0, count);
  Shape s = input_shape;
  for (std::size_t i = 0; i < count; ++i) s = layers_[i]->output_shape(s);
  return s;
}

std::vector<OpCount> Network::layer_ops(const Shape& input_shape) const {
  std::vector<OpCount> out;
  out.reserve(layers_.size());
  Shape s = input_shape;
  for (const auto& l : layers_) {
    out.push_back(l->forward_ops(s));
    s = l->output_shape(s);
  }
  return out;
}

OpCount Network::forward_ops(const Shape& input_shape) const {
  OpCount total;
  for (const OpCount& ops : layer_ops(input_shape)) total += ops;
  return total;
}

std::string Network::summary() const {
  std::string s;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i != 0) s += " -> ";
    s += layers_[i]->name();
  }
  return s;
}

}  // namespace cdl
