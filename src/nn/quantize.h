// Quantization helpers: fake (simulated) per-tensor weight quantization for
// the precision ablation, plus the real u8/s8 conversions used by the INT8
// cascade path.
//
// The paper implements its classifiers at RTL on 45 nm silicon, where
// datapaths are fixed-point. fake_quantize_* emulates that by snapping
// trained parameters to a b-bit grid (values stay float, hence "fake"),
// letting the quantization ablation measure how CDL accuracy holds up at
// hardware precisions. The quantize_*_u8/s8 helpers below perform the actual
// integer conversions for the quantized inference kernels (nn/qgemm.h):
// activations map to unsigned 8-bit with zero point 0 (valid because every
// quantized boundary in the paper's architectures is sigmoid output or
// nonnegative input data), weights to signed 8-bit per output channel,
// bounded to kQgemmWeightMax so the AVX2 tier stays exact.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cdl/conditional_network.h"
#include "core/tensor.h"
#include "nn/network.h"

namespace cdl {

struct QuantizationReport {
  unsigned bits = 0;
  std::size_t tensors = 0;
  std::size_t values = 0;
  double max_abs_error = 0.0;  ///< largest |original - quantized| seen
};

/// Snaps every value of `t` to a symmetric b-bit grid scaled by the tensor's
/// max-abs value: q = round(v/s) in [-(2^(b-1)-1), 2^(b-1)-1], v' = q*s.
/// `bits` must be in [2, 32]. Returns the largest absolute rounding error.
double fake_quantize_tensor(Tensor& t, unsigned bits);

/// Quantizes a parameter set in place.
QuantizationReport fake_quantize(std::span<Tensor* const> params, unsigned bits);

/// Quantizes every trainable parameter of a network.
QuantizationReport fake_quantize_network(Network& net, unsigned bits);

/// Quantizes the baseline and every stage classifier of a CDLN.
QuantizationReport fake_quantize_cdln(ConditionalNetwork& net, unsigned bits);

// --- real int8 conversions (INT8 cascade path) ----------------------------

/// Number of representable activation levels above zero: u8 in [0, 255]
/// with zero point 0.
inline constexpr std::int32_t kActQuantLevels = 255;

/// Scale mapping the nonnegative activation range [0, amax] onto [0, 255].
/// A degenerate (<= 0, non-finite) amax yields 1.0f so the conversion stays
/// well defined.
[[nodiscard]] float activation_quant_scale(float amax);

/// q = clamp(nearbyint(v * inv_scale), 0, 255), elementwise. Uses
/// nearbyintf under the default rounding mode (round-to-nearest-even) and
/// stays scalar: every float step of the int8 path rounds identically no
/// matter the batch shape, tile or SIMD tier.
void quantize_activations_u8(const float* in, std::size_t n, float inv_scale,
                             std::uint8_t* out);

/// Per-output-channel symmetric weight quantization: row oc of w(out_ch, k)
/// maps onto [-kQgemmWeightMax, kQgemmWeightMax] (see nn/qgemm.h — the bound
/// keeps the AVX2 vpmaddubsw tier saturation-free). Returns the per-channel
/// scales; an all-zero channel gets scale 1.0f.
std::vector<float> quantize_weights_s8(const float* w, std::size_t out_ch,
                                       std::size_t k, std::int8_t* out);

}  // namespace cdl
