// Fake quantization: symmetric uniform per-tensor weight quantization.
//
// The paper implements its classifiers at RTL on 45 nm silicon, where
// datapaths are fixed-point. This module emulates that by snapping trained
// parameters to a b-bit grid (values stay float, hence "fake"), letting the
// quantization ablation measure how CDL accuracy holds up at hardware
// precisions.
#pragma once

#include <span>

#include "cdl/conditional_network.h"
#include "core/tensor.h"
#include "nn/network.h"

namespace cdl {

struct QuantizationReport {
  unsigned bits = 0;
  std::size_t tensors = 0;
  std::size_t values = 0;
  double max_abs_error = 0.0;  ///< largest |original - quantized| seen
};

/// Snaps every value of `t` to a symmetric b-bit grid scaled by the tensor's
/// max-abs value: q = round(v/s) in [-(2^(b-1)-1), 2^(b-1)-1], v' = q*s.
/// `bits` must be in [2, 32]. Returns the largest absolute rounding error.
double fake_quantize_tensor(Tensor& t, unsigned bits);

/// Quantizes a parameter set in place.
QuantizationReport fake_quantize(std::span<Tensor* const> params, unsigned bits);

/// Quantizes every trainable parameter of a network.
QuantizationReport fake_quantize_network(Network& net, unsigned bits);

/// Quantizes the baseline and every stage classifier of a CDLN.
QuantizationReport fake_quantize_cdln(ConditionalNetwork& net, unsigned bits);

}  // namespace cdl
