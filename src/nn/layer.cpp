#include "nn/layer.h"

#include <cstring>

#include "core/thread_pool.h"

namespace cdl {

void Layer::infer_block(const Shape& in_shape, const float* in, float* out,
                        std::size_t count, float* scratch,
                        ThreadPool* pool) const {
  (void)scratch;
  const std::size_t in_floats = in_shape.numel();
  const std::size_t out_floats = output_shape(in_shape).numel();
  const auto run = [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      Tensor x(in_shape);
      std::memcpy(x.data(), in + i * in_floats, in_floats * sizeof(float));
      const Tensor y = infer(x);
      std::memcpy(out + i * out_floats, y.data(), out_floats * sizeof(float));
    }
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(0, count, run);
  } else {
    run(0, 0, count);
  }
}

}  // namespace cdl
