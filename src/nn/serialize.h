// Binary (de)serialization of trained parameters.
//
// The format stores only parameter tensors, not architecture: callers rebuild
// the architecture in code (src/cdl/architectures.*) and load weights into
// it, with shape validation. Layout (little-endian):
//
//   magic  "CDLW"           4 bytes
//   version u32             currently 1
//   count   u64             number of tensors
//   per tensor: rank u32, dims u64[rank], data float32[numel]
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "core/tensor.h"
#include "nn/network.h"

namespace cdl {

void save_parameters(std::ostream& os, const std::vector<Tensor*>& params);

/// Loads into pre-shaped tensors; throws on magic/version/shape mismatch.
void load_parameters(std::istream& is, const std::vector<Tensor*>& params);

void save_network(const std::string& path, Network& net);
void load_network(const std::string& path, Network& net);

}  // namespace cdl
