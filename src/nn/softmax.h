// Softmax utilities: numerically stable softmax and confidence measures used
// by the CDL activation module.
#pragma once

#include "core/tensor.h"
#include "nn/opcount.h"

namespace cdl {

/// Numerically stable softmax over a rank-1 tensor of scores.
[[nodiscard]] Tensor softmax(const Tensor& logits);

/// Span form of softmax, writing into `out` (in == out is allowed). Uses the
/// same max-subtraction and accumulation order as the Tensor overload, so
/// results are bit-identical.
void softmax_into(const float* in, float* out, std::size_t n);

/// Operation cost of one softmax evaluation over `n` scores.
[[nodiscard]] OpCount softmax_ops(std::size_t n);

/// Largest probability in a distribution (the paper's confidence measure).
[[nodiscard]] float max_probability(const Tensor& probs);
[[nodiscard]] float max_probability(const float* probs, std::size_t n);

/// Difference between the two largest probabilities (margin confidence,
/// used by the confidence-policy ablation).
[[nodiscard]] float probability_margin(const Tensor& probs);
[[nodiscard]] float probability_margin(const float* probs, std::size_t n);

/// 1 - normalized Shannon entropy: 1 for a one-hot distribution, 0 for
/// uniform (entropy confidence, used by the confidence-policy ablation).
[[nodiscard]] float entropy_confidence(const Tensor& probs);
[[nodiscard]] float entropy_confidence(const float* probs, std::size_t n);

}  // namespace cdl
