// Softmax utilities: numerically stable softmax and confidence measures used
// by the CDL activation module.
#pragma once

#include "core/tensor.h"
#include "nn/opcount.h"

namespace cdl {

/// Numerically stable softmax over a rank-1 tensor of scores.
[[nodiscard]] Tensor softmax(const Tensor& logits);

/// Operation cost of one softmax evaluation over `n` scores.
[[nodiscard]] OpCount softmax_ops(std::size_t n);

/// Largest probability in a distribution (the paper's confidence measure).
[[nodiscard]] float max_probability(const Tensor& probs);

/// Difference between the two largest probabilities (margin confidence,
/// used by the confidence-policy ablation).
[[nodiscard]] float probability_margin(const Tensor& probs);

/// 1 - normalized Shannon entropy: 1 for a one-hot distribution, 0 for
/// uniform (entropy confidence, used by the confidence-policy ablation).
[[nodiscard]] float entropy_confidence(const Tensor& probs);

}  // namespace cdl
