// Vectorized elementwise activation kernels (sigmoid, tanh, relu) and the
// fused int8 dequantize+activate plane kernels built on them.
//
// The sigmoid is a polynomial exp approximation (Cody-Waite ln2 range
// reduction, degree-5 minimax polynomial, exponent-field scaling) whose
// *scalar* form performs exactly the same FP operations per element as the
// AVX2/AVX-512 lanes — the contract quantize_activations_u8 established:
// every instruction in the wide path (min/max clamp, mul, round-to-nearest-
// even, fmadd chain, integer exponent add, IEEE add + div) has a scalar
// counterpart with identical rounding, so results are bit-identical across
// dispatch tiers, thread counts and batch/tile splits. Accuracy versus the
// std::exp sigmoid is bounded by kSigmoidMaxAbsError (asserted in
// tests/test_act_kernels.cpp).
//
// Dispatch follows nn/conv2d.cpp: raw intrinsics selected once at first use
// via __builtin_cpu_supports, with CDL_FORCE_SCALAR pinning the scalar tier.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cdl {

/// Maximum |sigmoid_approx(x) - 1/(1+exp(-x))| over the reals, with the
/// reference evaluated in double precision. Pinned by test_act_kernels; the
/// approximation is a couple of float ulps of the true curve, far below any
/// task-accuracy-relevant scale (the int8 path's quantization step is
/// amax/255 ~ 4e-3).
inline constexpr float kSigmoidMaxAbsError = 4.0e-7F;

/// tanh(x) = 2*sigmoid(2x) - 1 doubles the sigmoid error bound and pays one
/// extra rounding.
inline constexpr float kTanhMaxAbsError = 1.0e-6F;

/// Kernel tier the activation maps dispatch to on this machine ("scalar",
/// "avx2-fma" or "avx512f"), resolved once at first use. Honors
/// CDL_FORCE_SCALAR like the conv/qgemm kernels.
[[nodiscard]] const char* act_dispatch_tier();

/// Scalar reference sigmoid/tanh — the exact per-element operation sequence
/// of the vector lanes (and the tail elements of the maps below). These are
/// what Sigmoid::apply / Tanh::apply evaluate, so the trainer's forward pass
/// is bit-consistent with batched inference. NaN inputs propagate with their
/// payload bits intact on every tier (the trainer's non-finite divergence
/// guard relies on poisoned values surfacing in the loss).
[[nodiscard]] float sigmoid_approx(float x);
[[nodiscard]] float tanh_approx(float x);

/// Bulk maps: out[i] = act(in[i]) for i in [0, n). In-place safe
/// (out == in). Each element's result is independent of n and of its
/// position, so any split of a range across calls, threads or tiles yields
/// bit-identical output.
void sigmoid_map(const float* in, float* out, std::size_t n);
void tanh_map(const float* in, float* out, std::size_t n);
void relu_map(const float* in, float* out, std::size_t n);

/// Fused int8 epilogue over one channel plane of pooled s32 accumulators:
/// out[i] = act(fmaf(float(in[i]), mult, bias)). The s32 -> float convert
/// rounds to nearest even in both the scalar form (static_cast) and the
/// vector form (vcvtdq2ps), so the fusion preserves the bit-identity
/// contract of the quantized cascade.
void dequant_sigmoid_plane(const std::int32_t* in, std::size_t n, float mult,
                           float bias, float* out);
void dequant_tanh_plane(const std::int32_t* in, std::size_t n, float mult,
                        float bias, float* out);
void dequant_relu_plane(const std::int32_t* in, std::size_t n, float mult,
                        float bias, float* out);

}  // namespace cdl
