// Dense: fully-connected layer. Accepts any input shape and flattens it,
// which is how the paper feeds pooled convolutional feature maps to the
// output layer and to each stage's linear classifier.
#pragma once

#include "nn/layer.h"

namespace cdl {

class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features);

  Tensor forward(const Tensor& input) override;
  [[nodiscard]] Tensor infer(const Tensor& input) const override;
  [[nodiscard]] std::size_t infer_block_scratch_floats(
      const Shape& in_shape, std::size_t count,
      std::size_t workers) const override;
  /// One bias-initialized GEMM over the whole block: C(count, out) =
  /// X(count, in) * W^T with accumulators starting at the bias, which is the
  /// same "acc = bias; acc += w*x" chain as infer() — bit-identical per row.
  void infer_block(const Shape& in_shape, const float* in, float* out,
                   std::size_t count, float* scratch,
                   ThreadPool* pool) const override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input_shape) const override;
  [[nodiscard]] OpCount forward_ops(const Shape& input_shape) const override;
  [[nodiscard]] std::string name() const override;

  std::vector<Tensor*> parameters() override { return {&weights_, &bias_}; }
  std::vector<Tensor*> gradients() override { return {&grad_weights_, &grad_bias_}; }
  void init(Rng& rng) override;

  [[nodiscard]] std::size_t in_features() const { return in_features_; }
  [[nodiscard]] std::size_t out_features() const { return out_features_; }
  [[nodiscard]] const Tensor& weights() const { return weights_; }
  [[nodiscard]] const Tensor& bias() const { return bias_; }

 private:
  std::size_t in_features_;
  std::size_t out_features_;
  Tensor weights_;  ///< (out, in)
  Tensor bias_;     ///< (out)
  Tensor grad_weights_;
  Tensor grad_bias_;
  Tensor cached_input_;  ///< flattened input of the latest forward()
  Shape cached_input_shape_;
};

}  // namespace cdl
