// im2col: unrolls convolution input windows into a matrix so Conv2D can be
// computed as one GEMM — the standard lowering used by CPU/GPU DL stacks.
#pragma once

#include "core/tensor.h"

namespace cdl {

/// Lowers a CHW `input` for a valid KxK / stride-1 convolution into a
/// (C*K*K) x (OH*OW) column matrix: column p holds the input window that
/// produces output pixel p, flattened channel-major then row-major — the
/// layout matching Conv2D's (out_c, in_c, K, K) weights flattened per row.
[[nodiscard]] Tensor im2col(const Tensor& input, std::size_t kernel);

/// Same lowering, written into `cols` (resized as needed). Passing a scratch
/// tensor that is reused across calls avoids the per-forward allocation.
void im2col_into(const Tensor& input, std::size_t kernel, Tensor& cols);

// --- batched lowering straight into packed GEMM panels --------------------

/// Number of kGemmNr-wide column panels in the concatenated column matrix of
/// `count` images of (c, h, w) — i.e. (C*K*K) x (count*OH*OW). Raw dims (not
/// a Shape) so the zero-allocation hot path never builds a descriptor.
[[nodiscard]] std::size_t im2col_panel_count(std::size_t h, std::size_t w,
                                             std::size_t kernel,
                                             std::size_t count);

/// Lowers `count` contiguous CHW images (`images` holds count * c*h*w
/// floats) for a valid KxK / stride-1 convolution directly into packed GEMM
/// B panels (gemm_pack_b layout) of the concatenated (C*K*K) x (count*OH*OW)
/// column matrix, where column i*OH*OW + p is image i's patch for its output
/// pixel p. Writes panels [panel_begin, panel_end) only, so workers can emit
/// disjoint ranges in parallel. Emitting panels directly skips a separate
/// multi-megabyte pack pass over the column matrix, and iterating
/// panel-major keeps writes sequential.
void im2col_pack_panels(const float* images, std::size_t count, std::size_t c,
                        std::size_t h, std::size_t w, std::size_t kernel,
                        float* pb, std::size_t panel_begin,
                        std::size_t panel_end);

}  // namespace cdl
