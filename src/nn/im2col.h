// im2col: unrolls convolution input windows into a matrix so Conv2D can be
// computed as one GEMM — the standard lowering used by CPU/GPU DL stacks.
#pragma once

#include "core/tensor.h"

namespace cdl {

/// Lowers a CHW `input` for a valid KxK / stride-1 convolution into a
/// (C*K*K) x (OH*OW) column matrix: column p holds the input window that
/// produces output pixel p, flattened channel-major then row-major — the
/// layout matching Conv2D's (out_c, in_c, K, K) weights flattened per row.
[[nodiscard]] Tensor im2col(const Tensor& input, std::size_t kernel);

/// Same lowering, written into `cols` (resized as needed). Passing a scratch
/// tensor that is reused across calls avoids the per-forward allocation.
void im2col_into(const Tensor& input, std::size_t kernel, Tensor& cols);

}  // namespace cdl
