#include "nn/activations.h"

#include <cmath>
#include <stdexcept>

#include "core/thread_pool.h"
#include "nn/act_kernels.h"

namespace cdl {

Tensor ElementwiseActivation::forward(const Tensor& input) {
  Tensor out = infer(input);
  cached_output_ = out;
  return out;
}

Tensor ElementwiseActivation::infer(const Tensor& input) const {
  Tensor out(input.shape());
  map(input.data(), out.data(), input.numel());
  return out;
}

void ElementwiseActivation::map(const float* in, float* out,
                                std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) out[i] = apply(in[i]);
}

void ElementwiseActivation::infer_block(const Shape& in_shape, const float* in,
                                        float* out, std::size_t count,
                                        float* scratch,
                                        ThreadPool* pool) const {
  (void)scratch;
  const std::size_t total = count * in_shape.numel();
  // Single-reference capture keeps the ChunkFn inside std::function's
  // small-object buffer, so even the threaded path allocates nothing. Each
  // chunk runs the bulk map; elements are independent, so any chunking is
  // bit-identical to one serial map over the whole block.
  struct Ctx {
    const ElementwiseActivation* act;
    const float* in;
    float* out;
  } ctx{this, in, out};
  const auto run = [&ctx](std::size_t, std::size_t begin, std::size_t end) {
    ctx.act->map(ctx.in + begin, ctx.out + begin, end - begin);
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(0, total, run);
  } else {
    run(0, 0, total);
  }
}

Tensor ElementwiseActivation::backward(const Tensor& grad_output) {
  if (cached_output_.empty()) {
    throw std::logic_error(name() + "::backward called before forward");
  }
  if (grad_output.shape() != cached_output_.shape()) {
    throw std::invalid_argument(name() + "::backward: grad shape " +
                                grad_output.shape().to_string());
  }
  Tensor grad_input(grad_output.shape());
  for (std::size_t i = 0; i < grad_output.numel(); ++i) {
    grad_input[i] = grad_output[i] * derivative_from_output(cached_output_[i]);
  }
  return grad_input;
}

OpCount ElementwiseActivation::forward_ops(const Shape& input_shape) const {
  OpCount ops;
  ops.activations = input_shape.numel();
  ops.mem_reads = input_shape.numel();
  ops.mem_writes = input_shape.numel();
  return ops;
}

float Sigmoid::apply(float x) const { return sigmoid_approx(x); }

void Sigmoid::map(const float* in, float* out, std::size_t n) const {
  sigmoid_map(in, out, n);
}

float Tanh::apply(float x) const { return tanh_approx(x); }

void Tanh::map(const float* in, float* out, std::size_t n) const {
  tanh_map(in, out, n);
}

void ReLU::map(const float* in, float* out, std::size_t n) const {
  relu_map(in, out, n);
}

}  // namespace cdl
