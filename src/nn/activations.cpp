#include "nn/activations.h"

#include <cmath>
#include <stdexcept>

namespace cdl {

Tensor ElementwiseActivation::forward(const Tensor& input) {
  Tensor out = infer(input);
  cached_output_ = out;
  return out;
}

Tensor ElementwiseActivation::infer(const Tensor& input) const {
  Tensor out(input.shape());
  for (std::size_t i = 0; i < input.numel(); ++i) out[i] = apply(input[i]);
  return out;
}

Tensor ElementwiseActivation::backward(const Tensor& grad_output) {
  if (cached_output_.empty()) {
    throw std::logic_error(name() + "::backward called before forward");
  }
  if (grad_output.shape() != cached_output_.shape()) {
    throw std::invalid_argument(name() + "::backward: grad shape " +
                                grad_output.shape().to_string());
  }
  Tensor grad_input(grad_output.shape());
  for (std::size_t i = 0; i < grad_output.numel(); ++i) {
    grad_input[i] = grad_output[i] * derivative_from_output(cached_output_[i]);
  }
  return grad_input;
}

OpCount ElementwiseActivation::forward_ops(const Shape& input_shape) const {
  OpCount ops;
  ops.activations = input_shape.numel();
  ops.mem_reads = input_shape.numel();
  ops.mem_writes = input_shape.numel();
  return ops;
}

float Sigmoid::apply(float x) const { return 1.0F / (1.0F + std::exp(-x)); }

float Tanh::apply(float x) const { return std::tanh(x); }

}  // namespace cdl
