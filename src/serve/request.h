// Request/Response: the unit of work flowing through the serving engine.
//
// A request is one image bound for one registered model, stamped with its
// arrival time and an optional completion deadline. The response carries the
// cascade's ClassificationResult (bit-identical to an offline
// classify_batch_into over the same image — the serving determinism
// contract) plus the latency/SLO accounting for that request.
#pragma once

#include <cstdint>
#include <future>
#include <string>

#include "cdl/conditional_network.h"
#include "core/tensor.h"

namespace cdl::serve {

/// Terminal state of a request. kRejected never enters the queue (bounded
/// queue full — the backpressure contract); kExpired was accepted but its
/// deadline passed before dispatch, so no inference ran; kShutdown was
/// accepted but the engine aborted before serving it (only possible via
/// abort(), never via the draining shutdown()).
enum class RequestStatus : std::uint8_t {
  kOk = 0,
  kRejected = 1,
  kExpired = 2,
  kShutdown = 3,
};

[[nodiscard]] const char* to_string(RequestStatus s);

struct Response {
  RequestStatus status = RequestStatus::kOk;
  ClassificationResult result;    ///< valid only when status == kOk
  std::uint64_t request_id = 0;
  std::size_t model = 0;          ///< ModelRegistry index
  std::uint64_t latency_ns = 0;   ///< completion - arrival (engine clock)
  std::uint64_t batch_size = 0;   ///< rows in the dispatched batch (kOk only)
  bool slo_miss = false;          ///< completed after the deadline (or expired)
};

struct Request {
  std::uint64_t id = 0;
  std::size_t model = 0;           ///< ModelRegistry index
  Tensor input;
  std::uint64_t arrival_ns = 0;    ///< stamped by the engine at submit
  std::uint64_t deadline_ns = 0;   ///< absolute engine-clock time; 0 = none
  std::promise<Response> promise;  ///< fulfilled exactly once
};

}  // namespace cdl::serve
