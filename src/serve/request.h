// Request/Response: the unit of work flowing through the serving engine.
//
// A request is one image bound for one registered model, stamped with its
// arrival time and an optional completion deadline. The response carries the
// cascade's ClassificationResult (bit-identical to an offline
// classify_batch_into over the same image — the serving determinism
// contract) plus the latency/SLO accounting for that request.
#pragma once

#include <cstdint>
#include <future>
#include <string>

#include "cdl/conditional_network.h"
#include "core/tensor.h"

namespace cdl::serve {

/// Terminal state of a request. kRejected never enters the queue (bounded
/// queue full — the backpressure contract); kExpired was accepted but its
/// deadline passed before dispatch, so no inference ran; kShutdown was
/// accepted but the engine aborted before serving it (only possible via
/// abort(), never via the draining shutdown()).
enum class RequestStatus : std::uint8_t {
  kOk = 0,
  kRejected = 1,
  kExpired = 2,
  kShutdown = 3,
};

[[nodiscard]] const char* to_string(RequestStatus s);

struct Response {
  RequestStatus status = RequestStatus::kOk;
  ClassificationResult result;    ///< valid only when status == kOk
  std::uint64_t request_id = 0;
  std::size_t model = 0;          ///< ModelRegistry index
  std::uint64_t latency_ns = 0;   ///< completion - arrival (engine clock)
  std::uint64_t batch_size = 0;   ///< rows in the dispatched batch (kOk only)
  /// Exact phase decomposition of latency_ns (kOk only, same clock stamps):
  /// queue_ns + batch_wait_ns + compute_ns == latency_ns.
  std::uint64_t queue_ns = 0;       ///< submit -> popped off the MPMC queue
  std::uint64_t batch_wait_ns = 0;  ///< in the batcher until the batch formed
  std::uint64_t compute_ns = 0;     ///< batch formation -> inference done
  bool slo_miss = false;          ///< completed after the deadline (or expired)
  /// Modeled 45 nm energy of this request's cascade traversal (kOk only):
  /// the engine's precomputed exit-energy table indexed by result.exit_stage,
  /// bit-identical to offline attribution of the same input at any worker
  /// count (see ConditionalNetwork::exit_energy_table).
  double energy_pj = 0.0;
};

struct Request {
  std::uint64_t id = 0;
  std::size_t model = 0;           ///< ModelRegistry index
  /// Dense per-model submission sequence (0, 1, 2, ...), assigned at submit
  /// for every request that reaches the queue-push attempt. The drift
  /// monitor windows on this, so window membership is a function of
  /// submission order alone — never of completion order or worker count.
  std::uint64_t seq = 0;
  Tensor input;
  std::uint64_t arrival_ns = 0;    ///< stamped by the engine at submit
  std::uint64_t deadline_ns = 0;   ///< absolute engine-clock time; 0 = none
  std::uint64_t dequeue_ns = 0;    ///< engine clock: popped off the MPMC queue
  std::uint64_t batch_ns = 0;      ///< engine clock: its batch was formed
  /// Lifecycle timestamps on the tracer's clock (obs::now_ns), stamped only
  /// while tracing is enabled; 0 otherwise. Kept separate from the engine
  /// clock so traces stay coherent with the cascade's own spans even under
  /// a ManualClock.
  std::uint64_t trace_enqueue_ns = 0;
  std::uint64_t trace_dequeue_ns = 0;
  std::uint64_t trace_batch_ns = 0;
  std::promise<Response> promise;  ///< fulfilled exactly once
};

}  // namespace cdl::serve
