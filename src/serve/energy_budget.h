// EnergyBudgetWatchdog: windowed energy-rate accounting against a serving
// power budget.
//
// The paper's knob is energy per classified input; a deployment's knob is
// energy per second. This watchdog folds each completed request's attributed
// energy (Response::energy_pj, the engine's precomputed exit-energy table)
// into fixed-duration windows on the engine clock and scores each closed
// window's average power against a configurable mJ/s budget. A window whose
// rate exceeds the budget raises a breach event, which the engine publishes
// through the same surfaces the drift monitor uses: a trace instant
// ("serve/energy_budget"), OpenMetrics counters/gauges, a telemetry block,
// and a report block.
//
// Windowing is anchored at the first recorded completion and runs on the
// injected engine clock, so under a ManualClock the whole lifecycle is
// deterministic: a window [t0 + w*window_ns, t0 + (w+1)*window_ns) closes
// exactly when a record() carries now >= its end (energy recorded at the
// closing instant belongs to the next window) — the breach-at-exact-instant
// semantics test_energy_budget pins down. Because pJ/ns == mJ/s, a window's
// rate is simply its energy sum divided by the window length, with no unit
// conversion to lose precision over.
//
// All methods are internally synchronized; record() is called by concurrent
// engine workers.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace cdl::serve {

struct EnergyBudgetConfig {
  /// Average-power budget per window in mJ/s; 0 disables the watchdog
  /// (record() still accumulates totals, but no windows are scored).
  double budget_mj_per_s = 0.0;
  /// Window length on the engine clock.
  std::uint64_t window_ns = 1'000'000'000;
};

/// One closed window, drained via take_scored().
struct EnergyWindowResult {
  std::uint64_t index = 0;      ///< window ordinal since the first record
  double energy_pj = 0.0;       ///< energy completed inside the window
  double rate_mj_per_s = 0.0;   ///< energy_pj / window_ns (pJ/ns == mJ/s)
  bool breach = false;          ///< rate > budget
};

class EnergyBudgetWatchdog {
 public:
  /// Throws std::invalid_argument on window_ns == 0 or a negative budget.
  explicit EnergyBudgetWatchdog(EnergyBudgetConfig config);

  [[nodiscard]] bool enabled() const { return config_.budget_mj_per_s > 0.0; }
  [[nodiscard]] const EnergyBudgetConfig& config() const { return config_; }

  /// One completed request: `energy_pj` attributed at engine-clock time
  /// `now_ns`. Closes (and scores) every window that ends at or before
  /// `now_ns` first, then files the energy into the current window.
  void record(std::uint64_t now_ns, double energy_pj);

  /// Closes the window in progress (shutdown/final-report path) so its
  /// partial energy is still scored. Idempotent until the next record().
  void flush(std::uint64_t now_ns);

  /// Windows closed since the last call, in index order.
  [[nodiscard]] std::vector<EnergyWindowResult> take_scored();

  [[nodiscard]] std::uint64_t windows_scored() const;
  [[nodiscard]] std::uint64_t breaches() const;
  /// Latest / maximum closed-window rate; -1 before the first closed window.
  [[nodiscard]] double latest_rate_mj_per_s() const;
  [[nodiscard]] double max_rate_mj_per_s() const;
  /// Index of the first breaching window; -1 = none.
  [[nodiscard]] std::int64_t first_breach_window() const;
  /// Total energy recorded (all windows, open one included).
  [[nodiscard]] double total_energy_pj() const;

 private:
  /// Scores windows [next_index_, window_of(now_ns)). Caller holds mutex_.
  void close_through(std::uint64_t now_ns);
  void close_window(double energy_pj);

  const EnergyBudgetConfig config_;

  mutable std::mutex mutex_;
  bool anchored_ = false;
  std::uint64_t t0_ns_ = 0;        ///< first record's clock stamp
  std::uint64_t next_index_ = 0;   ///< window currently accumulating
  double window_energy_pj_ = 0.0;  ///< energy filed into that window
  double total_energy_pj_ = 0.0;
  std::vector<EnergyWindowResult> scored_;  ///< drained by take_scored()
  std::uint64_t windows_scored_ = 0;
  std::uint64_t breaches_ = 0;
  double latest_rate_ = -1.0;
  double max_rate_ = -1.0;
  std::int64_t first_breach_window_ = -1;
};

}  // namespace cdl::serve
