#include "serve/telemetry.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace cdl::serve {

TelemetrySnapshotter::TelemetrySnapshotter(TelemetryConfig config,
                                           const Clock* clock,
                                           const std::string& header_extra)
    : config_(std::move(config)), clock_(clock), header_extra_(header_extra) {
  if (config_.path.empty()) {
    throw std::invalid_argument("TelemetrySnapshotter: empty path");
  }
  if (clock_ == nullptr) {
    throw std::invalid_argument("TelemetrySnapshotter: null clock");
  }
  if (config_.interval_ns == 0) config_.interval_ns = 1;
  open_file();
  next_due_ns_.store(clock_->now_ns() + config_.interval_ns,
                     std::memory_order_relaxed);
}

void TelemetrySnapshotter::open_file() {
  os_.open(config_.path, std::ios::out | std::ios::trunc);
  if (!os_) {
    throw std::runtime_error("TelemetrySnapshotter: cannot open " +
                             config_.path);
  }
  bytes_ = 0;
  std::ostringstream header;
  header << "{\"schema\":\"" << kSchema << "\",\"event\":\"start\",\"t_ns\":"
         << clock_->now_ns() << ",\"interval_ns\":" << config_.interval_ns
         << ",\"rotate_bytes\":" << config_.rotate_bytes << header_extra_
         << "}";
  write_line(header.str());
}

void TelemetrySnapshotter::write_line(const std::string& line) {
  os_ << line << '\n';
  os_.flush();  // lines must be tail-able and survive abrupt exits
  bytes_ += line.size() + 1;
}

bool TelemetrySnapshotter::due() const {
  return clock_->now_ns() >= next_due_ns_.load(std::memory_order_relaxed);
}

bool TelemetrySnapshotter::sample(
    const std::function<void(std::ostream&)>& body, bool force) {
  const std::uint64_t now = clock_->now_ns();
  if (!force && now < next_due_ns_.load(std::memory_order_relaxed)) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // Re-check under the lock: another thread may have just sampled.
  if (!force && now < next_due_ns_.load(std::memory_order_relaxed)) {
    return false;
  }
  std::ostringstream line;
  line << "{\"schema\":\"" << kSchema << "\",\"event\":\"sample\",\"t_ns\":"
       << now;
  body(line);
  line << "}";

  if (config_.rotate_bytes != 0 && bytes_ > 0 &&
      bytes_ + line.str().size() + 1 > config_.rotate_bytes) {
    os_.close();
    const std::string old = config_.path + ".1";
    std::remove(old.c_str());
    std::rename(config_.path.c_str(), old.c_str());
    open_file();
    rotations_.fetch_add(1, std::memory_order_relaxed);
  }
  write_line(line.str());
  samples_.fetch_add(1, std::memory_order_relaxed);
  next_due_ns_.store(now + config_.interval_ns, std::memory_order_relaxed);
  return true;
}

}  // namespace cdl::serve
