// HttpObserver: a minimal embedded HTTP endpoint for live serving
// observability.
//
// One blocking listener thread accepts loopback TCP connections and serves
// three read-only routes:
//
//   GET /metrics  -> OpenMetrics text exposition (the engine's registry,
//                    written under the SLO tracker's mutex so a scrape never
//                    races the workers)
//   GET /healthz  -> "ok" (liveness)
//   GET /report   -> the same JSON report block cdl_serve writes at exit,
//                    rendered from the live engine state
//   GET /quitquitquit -> sets the quit flag (polled by cdl_serve's linger
//                    loop) and answers "bye"
//
// The observer holds no reference to the engine itself — both payload routes
// are std::function callbacks writing into a std::ostream, so the tool
// decides what a scrape sees and the observer stays a pure transport. One
// connection is served at a time (scrapes are short and infrequent; there is
// deliberately no connection pool, TLS, keep-alive or request body support).
// Port 0 binds an ephemeral port; port() reports the bound one.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <thread>

namespace cdl::serve {

class HttpObserver {
 public:
  using Handler = std::function<void(std::ostream&)>;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the listener thread.
  /// `metrics` backs GET /metrics (OpenMetrics text), `report` backs
  /// GET /report (JSON). Throws std::runtime_error when the socket cannot
  /// be bound.
  HttpObserver(int port, Handler metrics, Handler report);
  ~HttpObserver();  ///< stop()

  HttpObserver(const HttpObserver&) = delete;
  HttpObserver& operator=(const HttpObserver&) = delete;

  /// Unblocks the accept loop and joins the listener thread. Idempotent.
  void stop();

  /// The bound TCP port (resolves port 0 to the kernel's choice).
  [[nodiscard]] int port() const { return port_; }
  /// Set once a client has fetched /quitquitquit.
  [[nodiscard]] bool quit_requested() const {
    return quit_.load(std::memory_order_acquire);
  }
  /// Requests served so far (any route, including 404s).
  [[nodiscard]] std::uint64_t requests_served() const {
    return served_.load(std::memory_order_acquire);
  }

 private:
  void serve_loop();
  void handle_connection(int fd);

  Handler metrics_;
  Handler report_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{true};
  std::atomic<bool> quit_{false};
  std::atomic<std::uint64_t> served_{0};
  std::thread thread_;
};

}  // namespace cdl::serve
