#include "serve/drift.h"

#include <algorithm>
#include <stdexcept>

namespace cdl::serve {

ExitDriftMonitor::ExitDriftMonitor(std::size_t num_stages, DriftConfig config)
    : num_stages_(num_stages), config_(config) {
  if (num_stages == 0) {
    throw std::invalid_argument("ExitDriftMonitor: num_stages == 0");
  }
  if (config.window == 0) {
    throw std::invalid_argument("ExitDriftMonitor: window == 0");
  }
  if (config.confidence_bins == 0) {
    throw std::invalid_argument("ExitDriftMonitor: confidence_bins == 0");
  }
}

void ExitDriftMonitor::set_reference(
    const std::vector<double>& exit_fractions) {
  if (exit_fractions.size() != num_stages_) {
    throw std::invalid_argument(
        "ExitDriftMonitor::set_reference: expected " +
        std::to_string(num_stages_) + " stage fractions, got " +
        std::to_string(exit_fractions.size()));
  }
  double sum = 0.0;
  for (const double f : exit_fractions) {
    if (f < 0.0) {
      throw std::invalid_argument(
          "ExitDriftMonitor::set_reference: negative fraction");
    }
    sum += f;
  }
  if (sum <= 0.0) {
    throw std::invalid_argument(
        "ExitDriftMonitor::set_reference: fractions sum to zero");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ref_exit_.resize(num_stages_);
  for (std::size_t s = 0; s < num_stages_; ++s) {
    ref_exit_[s] = exit_fractions[s] / sum;
  }
  ref_confidence_.clear();  // explicit references carry no confidence shape
}

ExitDriftMonitor::Window& ExitDriftMonitor::window_slot(std::uint64_t index) {
  Window& w = pending_[index];
  if (w.exits.empty()) {
    w.exits.assign(num_stages_, 0);
    w.confidence.assign(config_.confidence_bins, 0);
  }
  return w;
}

void ExitDriftMonitor::record(std::uint64_t seq, std::size_t stage,
                              double confidence) {
  std::lock_guard<std::mutex> lock(mutex_);
  Window& w = window_slot(seq / config_.window);
  const std::size_t s = std::min(stage, num_stages_ - 1);
  ++w.exits[s];
  const double clamped = std::clamp(confidence, 0.0, 1.0);
  std::size_t bin = static_cast<std::size_t>(
      clamped * static_cast<double>(config_.confidence_bins));
  bin = std::min(bin, config_.confidence_bins - 1);  // confidence == 1.0
  ++w.confidence[bin];
  ++w.samples;
  ++w.observed;
  advance();
}

void ExitDriftMonitor::record_missing(std::uint64_t seq) {
  std::lock_guard<std::mutex> lock(mutex_);
  Window& w = window_slot(seq / config_.window);
  ++w.observed;
  advance();
}

double ExitDriftMonitor::chi_square(
    const std::vector<std::uint64_t>& observed,
    const std::vector<double>& ref) const {
  std::uint64_t n = 0;
  for (const std::uint64_t o : observed) n += o;
  if (n == 0) return 0.0;
  double score = 0.0;
  for (std::size_t i = 0; i < observed.size() && i < ref.size(); ++i) {
    const double expected = static_cast<double>(n) * ref[i];
    const double diff = static_cast<double>(observed[i]) - expected;
    score += diff * diff / std::max(expected, config_.min_expected);
  }
  return score;
}

void ExitDriftMonitor::advance() {
  for (;;) {
    const auto it = pending_.find(next_to_score_);
    if (it == pending_.end() || it->second.observed < config_.window) return;
    Window& w = it->second;

    DriftWindowResult result;
    result.index = next_to_score_;
    result.samples = w.samples;
    result.missing = w.observed - w.samples;
    result.exits = w.exits;

    if (ref_exit_.empty()) {
      // No reference yet: the first window with samples becomes it. An
      // all-missing window cannot seed a profile and scores 0.
      if (w.samples > 0) {
        ref_exit_.resize(num_stages_);
        ref_confidence_.resize(config_.confidence_bins);
        const double n = static_cast<double>(w.samples);
        for (std::size_t s = 0; s < num_stages_; ++s) {
          ref_exit_[s] = static_cast<double>(w.exits[s]) / n;
        }
        for (std::size_t b = 0; b < config_.confidence_bins; ++b) {
          ref_confidence_[b] = static_cast<double>(w.confidence[b]) / n;
        }
        result.reference = true;
      }
    } else if (w.samples > 0) {
      result.score = chi_square(w.exits, ref_exit_);
      if (!ref_confidence_.empty()) {
        result.score += chi_square(w.confidence, ref_confidence_);
      }
      result.drift = result.score >= config_.threshold;
    }

    ++windows_scored_;
    latest_score_ = result.score;
    max_score_ = std::max(max_score_, result.score);
    if (result.drift) {
      ++drift_events_;
      if (first_drift_window_ < 0) {
        first_drift_window_ = static_cast<std::int64_t>(result.index);
      }
    }
    scored_.push_back(std::move(result));
    pending_.erase(it);
    ++next_to_score_;
  }
}

std::vector<DriftWindowResult> ExitDriftMonitor::take_scored() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<DriftWindowResult> out;
  out.swap(scored_);
  return out;
}

std::uint64_t ExitDriftMonitor::windows_scored() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return windows_scored_;
}

std::uint64_t ExitDriftMonitor::drift_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return drift_events_;
}

double ExitDriftMonitor::latest_score() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return windows_scored_ == 0 ? -1.0 : latest_score_;
}

double ExitDriftMonitor::max_score() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return windows_scored_ == 0 ? -1.0 : max_score_;
}

std::int64_t ExitDriftMonitor::first_drift_window() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return first_drift_window_;
}

bool ExitDriftMonitor::has_reference() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !ref_exit_.empty();
}

std::vector<double> ExitDriftMonitor::reference() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ref_exit_;
}

}  // namespace cdl::serve
