// ModelRegistry: the set of checkpoints a serving engine serves.
//
// Models are registered once (by name) before the engine starts and are
// immutable afterwards — worker threads call the const classify path
// concurrently, which is safe exactly because nothing mutates the networks.
// Registration order defines the dense model index used on the hot path
// (requests carry the index, not the name).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "cdl/conditional_network.h"

namespace cdl::serve {

class ModelRegistry {
 public:
  /// Takes ownership of a ready-to-serve network (trained, δ set, precision
  /// chosen). Returns the model's index. Throws std::invalid_argument on a
  /// duplicate or empty name.
  std::size_t add(std::string name, ConditionalNetwork net);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Index lookup by name; nullopt when unknown.
  [[nodiscard]] std::optional<std::size_t> find(const std::string& name) const;

  /// Throws std::out_of_range on a bad index.
  [[nodiscard]] const ConditionalNetwork& net(std::size_t index) const;
  [[nodiscard]] const std::string& name(std::size_t index) const;

 private:
  struct Entry {
    std::string name;
    ConditionalNetwork net;
  };
  std::vector<Entry> entries_;
};

}  // namespace cdl::serve
