#include "serve/clock.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace cdl::serve {

std::uint64_t RealClock::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool RealClock::wait_until(std::condition_variable& cv,
                           std::unique_lock<std::mutex>& lk,
                           std::uint64_t deadline_ns,
                           const std::function<bool()>& pred) {
  if (deadline_ns == kNever) {
    cv.wait(lk, pred);
    return true;
  }
  const std::uint64_t now = now_ns();
  if (deadline_ns <= now) return pred();
  return cv.wait_for(lk, std::chrono::nanoseconds(deadline_ns - now), pred);
}

RealClock& RealClock::instance() {
  static RealClock clock;
  return clock;
}

std::uint64_t ManualClock::now_ns() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return now_;
}

bool ManualClock::wait_until(std::condition_variable& cv,
                             std::unique_lock<std::mutex>& lk,
                             std::uint64_t deadline_ns,
                             const std::function<bool()>& pred) {
  // lk (the caller's state mutex) is held on entry and at every pred() call;
  // mutex_ is only ever taken nested inside it, so the lock order
  // caller-then-clock is consistent everywhere.
  //
  // Missed-wakeup safety: the waiter registers (cv, lk's mutex) BEFORE its
  // deadline check, and wake_waiters() bounces through that mutex before
  // notifying. An advance() that lands after our check therefore either (a)
  // blocks on lk until cv.wait has atomically parked us — its notify then
  // wakes us — or (b) completed before we re-checked the time, which the
  // check observes. Either way the wait cannot sleep through a time move.
  const Waiter self{&cv, lk.mutex()};
  while (true) {
    if (pred()) return true;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (now_ >= deadline_ns) return pred();
      waiters_.push_back(self);
    }
    cv.wait(lk);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = std::find_if(waiters_.begin(), waiters_.end(),
                           [&](const Waiter& w) { return w.cv == &cv; });
    if (it != waiters_.end()) waiters_.erase(it);
  }
}

void ManualClock::advance(std::uint64_t delta_ns) {
  std::unique_lock<std::mutex> lock(mutex_);
  now_ += delta_ns;
  wake_waiters(lock);
}

void ManualClock::set_ns(std::uint64_t now_ns) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (now_ns < now_) {
    throw std::invalid_argument("ManualClock::set_ns: time moved backwards");
  }
  now_ = now_ns;
  wake_waiters(lock);
}

void ManualClock::wake_waiters(std::unique_lock<std::mutex>& lock) {
  const std::vector<Waiter> waiters = waiters_;
  lock.unlock();
  for (const Waiter& w : waiters) {
    // Acquire-and-release the waiter's state mutex first: a waiter between
    // its registration and cv.wait holds it, so this blocks until the wait
    // is parked and the notification can no longer be lost. Never call
    // advance()/set_ns() while holding a waiter's mutex.
    { std::lock_guard<std::mutex> parked(*w.mutex); }
    w.cv->notify_all();
  }
}

}  // namespace cdl::serve
