// DynamicBatcher: coalesces single-image requests into dispatchable batches.
//
// A pure state machine with no threads, no blocking and no internal locking:
// the engine drives one instance per model under its own mutex, and the
// deterministic simulation tests drive one directly against a ManualClock.
// Every decision is a function of (pending requests, config, clock->now_ns()),
// so identical call sequences at identical virtual times make identical
// batches.
//
// Dispatch triggers, checked by ready():
//   * size    — max_batch requests are pending;
//   * timeout — the oldest pending request has waited max_delay_ns.
// Deadlines do not trigger dispatch; they bound how long a request may sit
// anywhere before service. take_expired() removes requests whose deadline
// already passed, in arrival order, before they waste a batch slot (the
// engine fails them with kExpired without running inference), and
// next_wake_ns() includes the earliest pending deadline so the engine wakes
// in time to expire it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "serve/clock.h"
#include "serve/request.h"

namespace cdl::serve {

struct BatcherConfig {
  /// Dispatch as soon as this many requests are pending (also the tile size
  /// the engine plans its BatchWorkspace for).
  std::size_t max_batch = 64;
  /// Dispatch when the oldest pending request has waited this long, even if
  /// the batch is not full (bounds queueing latency at low load).
  std::uint64_t max_delay_ns = 2'000'000;  // 2 ms
};

class DynamicBatcher {
 public:
  /// `clock` must outlive the batcher. Throws std::invalid_argument on
  /// max_batch == 0.
  DynamicBatcher(BatcherConfig config, const Clock* clock);

  // Move-only: pending requests hold promises, which cannot be copied.
  DynamicBatcher(DynamicBatcher&&) = default;
  DynamicBatcher& operator=(DynamicBatcher&&) = default;
  DynamicBatcher(const DynamicBatcher&) = delete;
  DynamicBatcher& operator=(const DynamicBatcher&) = delete;

  /// Appends a request (arrival order is preserved through dispatch).
  void add(Request request);

  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] const BatcherConfig& config() const { return config_; }

  /// True when a batch should dispatch now (size or timeout trigger — see
  /// header comment). False while empty.
  [[nodiscard]] bool ready() const;

  /// Earliest future time at which ready() or expiry could newly trigger:
  /// min(oldest arrival + max_delay, earliest pending deadline). The engine
  /// sleeps until this. Clock::kNever while empty or when already ready()
  /// (nothing to wait for — dispatch instead).
  [[nodiscard]] std::uint64_t next_wake_ns() const;

  /// Removes and returns, in arrival order, every pending request whose
  /// deadline has already passed. Call before take() so dead requests never
  /// occupy batch rows.
  [[nodiscard]] std::vector<Request> take_expired();

  /// Removes and returns the oldest min(pending, max_batch) requests in
  /// arrival order. Caller checks ready() (or is draining); take() itself
  /// does not re-check triggers.
  [[nodiscard]] std::vector<Request> take();

  /// Removes and returns everything pending (shutdown drain), arrival order.
  [[nodiscard]] std::vector<Request> drain();

 private:
  BatcherConfig config_;
  const Clock* clock_;
  std::deque<Request> pending_;  ///< arrival order: front() is oldest
};

}  // namespace cdl::serve
