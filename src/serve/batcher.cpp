#include "serve/batcher.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace cdl::serve {

DynamicBatcher::DynamicBatcher(BatcherConfig config, const Clock* clock)
    : config_(config), clock_(clock) {
  if (config_.max_batch == 0) {
    throw std::invalid_argument("DynamicBatcher: max_batch must be > 0");
  }
  if (clock_ == nullptr) {
    throw std::invalid_argument("DynamicBatcher: clock must not be null");
  }
}

void DynamicBatcher::add(Request request) {
  pending_.push_back(std::move(request));
}

bool DynamicBatcher::ready() const {
  if (pending_.empty()) return false;
  if (pending_.size() >= config_.max_batch) return true;  // size trigger
  return clock_->now_ns() >=
         pending_.front().arrival_ns + config_.max_delay_ns;  // timeout
}

std::uint64_t DynamicBatcher::next_wake_ns() const {
  if (pending_.empty() || ready()) return Clock::kNever;
  std::uint64_t wake = pending_.front().arrival_ns + config_.max_delay_ns;
  for (const Request& r : pending_) {
    if (r.deadline_ns != 0) wake = std::min(wake, r.deadline_ns);
  }
  return wake;
}

std::vector<Request> DynamicBatcher::take_expired() {
  const std::uint64_t now = clock_->now_ns();
  std::vector<Request> expired;
  // Stable single pass keeps both the expired list and the survivors in
  // arrival order (the "deadline expiry ordering" contract).
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->deadline_ns != 0 && it->deadline_ns <= now) {
      expired.push_back(std::move(*it));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

std::vector<Request> DynamicBatcher::take() {
  const std::size_t n = std::min(pending_.size(), config_.max_batch);
  std::vector<Request> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  return batch;
}

std::vector<Request> DynamicBatcher::drain() {
  std::vector<Request> all;
  all.reserve(pending_.size());
  while (!pending_.empty()) {
    all.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  return all;
}

}  // namespace cdl::serve
