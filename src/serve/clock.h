// Clock: the serving engine's single source of time, injectable so every
// queue/batcher/SLO behavior is unit-testable without sleeps.
//
// All serving timestamps are plain nanosecond counts from an arbitrary
// epoch. RealClock reads std::chrono::steady_clock; ManualClock holds a
// virtual time that tests advance explicitly. The one blocking primitive the
// engine needs — "wait until this predicate holds or the clock reaches a
// deadline" — lives on the Clock so a manual clock can wake waiters when
// test code advances virtual time, instead of anybody sleeping real
// milliseconds and hoping.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <vector>

namespace cdl::serve {

class Clock {
 public:
  /// Deadline value meaning "never": wait_until blocks on the predicate only.
  static constexpr std::uint64_t kNever =
      std::numeric_limits<std::uint64_t>::max();

  virtual ~Clock() = default;

  [[nodiscard]] virtual std::uint64_t now_ns() const = 0;

  /// Blocks until `pred()` returns true or now_ns() >= deadline_ns,
  /// whichever comes first, then returns pred()'s final value. `lk` must
  /// hold the mutex guarding the state `pred` reads; `cv` must be notified
  /// by whoever mutates that state. A manual clock additionally wakes the
  /// wait whenever its virtual time advances.
  virtual bool wait_until(std::condition_variable& cv,
                          std::unique_lock<std::mutex>& lk,
                          std::uint64_t deadline_ns,
                          const std::function<bool()>& pred) = 0;
};

/// std::chrono::steady_clock behind the Clock interface. Stateless; the
/// shared instance() is what production code uses by default.
class RealClock final : public Clock {
 public:
  [[nodiscard]] std::uint64_t now_ns() const override;
  bool wait_until(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
                  std::uint64_t deadline_ns,
                  const std::function<bool()>& pred) override;

  [[nodiscard]] static RealClock& instance();
};

/// Virtual time under test control. now_ns() starts at `start_ns` and moves
/// only via advance()/set_ns(); every wait_until() parked on this clock is
/// re-evaluated when time moves, so timeout paths run deterministically with
/// zero real waiting.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(std::uint64_t start_ns = 0) : now_(start_ns) {}

  [[nodiscard]] std::uint64_t now_ns() const override;
  bool wait_until(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
                  std::uint64_t deadline_ns,
                  const std::function<bool()>& pred) override;

  void advance(std::uint64_t delta_ns);
  /// Jumps to an absolute time; throws std::invalid_argument on moving
  /// backwards (deadline math assumes monotonic time).
  void set_ns(std::uint64_t now_ns);

 private:
  struct Waiter {
    std::condition_variable* cv = nullptr;
    std::mutex* mutex = nullptr;  ///< the waiter's state mutex (lk's mutex)
  };

  void wake_waiters(std::unique_lock<std::mutex>& lock);

  mutable std::mutex mutex_;
  std::uint64_t now_ = 0;
  /// Waits currently parked on this clock. Entries repeat when several
  /// threads wait on one cv; time moves notify each entry once, which is
  /// enough (notify_all wakes every waiter of that cv).
  std::vector<Waiter> waiters_;
};

}  // namespace cdl::serve
