#include "serve/energy_budget.h"

#include <stdexcept>

namespace cdl::serve {

EnergyBudgetWatchdog::EnergyBudgetWatchdog(EnergyBudgetConfig config)
    : config_(config) {
  if (config_.window_ns == 0) {
    throw std::invalid_argument("EnergyBudgetWatchdog: window_ns must be > 0");
  }
  if (config_.budget_mj_per_s < 0.0) {
    throw std::invalid_argument("EnergyBudgetWatchdog: budget must be >= 0");
  }
}

void EnergyBudgetWatchdog::close_window(double energy_pj) {
  EnergyWindowResult result;
  result.index = next_index_;
  result.energy_pj = energy_pj;
  // pJ/ns == mJ/s exactly (1e-12 J / 1e-9 s = 1e-3 J/s): one division, no
  // unit-conversion factors to round through.
  result.rate_mj_per_s =
      energy_pj / static_cast<double>(config_.window_ns);
  result.breach = result.rate_mj_per_s > config_.budget_mj_per_s;
  ++windows_scored_;
  if (result.breach) {
    ++breaches_;
    if (first_breach_window_ < 0) {
      first_breach_window_ = static_cast<std::int64_t>(result.index);
    }
  }
  latest_rate_ = result.rate_mj_per_s;
  if (result.rate_mj_per_s > max_rate_) max_rate_ = result.rate_mj_per_s;
  scored_.push_back(result);
  ++next_index_;
}

void EnergyBudgetWatchdog::close_through(std::uint64_t now_ns) {
  // A window [t0 + w*W, t0 + (w+1)*W) closes exactly when now reaches its
  // end; intermediate idle windows close with zero energy so breach indices
  // stay aligned with wall-clock windows.
  while (now_ns >= t0_ns_ + (next_index_ + 1) * config_.window_ns) {
    close_window(window_energy_pj_);
    window_energy_pj_ = 0.0;
  }
}

void EnergyBudgetWatchdog::record(std::uint64_t now_ns, double energy_pj) {
  const std::lock_guard<std::mutex> lock(mutex_);
  total_energy_pj_ += energy_pj;
  if (!enabled()) return;
  if (!anchored_) {
    anchored_ = true;
    t0_ns_ = now_ns;
  }
  close_through(now_ns);
  window_energy_pj_ += energy_pj;
}

void EnergyBudgetWatchdog::flush(std::uint64_t now_ns) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled() || !anchored_) return;
  close_through(now_ns);
  if (window_energy_pj_ > 0.0) {
    close_window(window_energy_pj_);
    window_energy_pj_ = 0.0;
  }
}

std::vector<EnergyWindowResult> EnergyBudgetWatchdog::take_scored() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<EnergyWindowResult> out;
  out.swap(scored_);
  return out;
}

std::uint64_t EnergyBudgetWatchdog::windows_scored() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return windows_scored_;
}

std::uint64_t EnergyBudgetWatchdog::breaches() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return breaches_;
}

double EnergyBudgetWatchdog::latest_rate_mj_per_s() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return latest_rate_;
}

double EnergyBudgetWatchdog::max_rate_mj_per_s() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return max_rate_;
}

std::int64_t EnergyBudgetWatchdog::first_breach_window() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return first_breach_window_;
}

double EnergyBudgetWatchdog::total_energy_pj() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_energy_pj_;
}

}  // namespace cdl::serve
