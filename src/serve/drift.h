// ExitDriftMonitor: streaming detection of exit-profile drift in the
// serving engine.
//
// The paper's conditional exits make serving cost input-dependent: when the
// workload shifts (digits -> letters, clean -> cluttered), inputs stop
// exiting early and the exit-stage distribution moves toward the deep
// stages. This monitor watches that distribution online: served results are
// bucketed into fixed-size windows, each completed window's per-stage exit
// counts and confidence histogram are compared against a reference profile
// with a chi-square statistic, and a window whose score crosses the
// threshold raises a drift event.
//
// Determinism contract: windows are keyed by the request's dense per-model
// submission sequence (Request::seq), NOT by completion time or completion
// order. A window covers seqs [w*window, (w+1)*window) and closes when every
// seq in that range has been observed — counts merge by commutative
// addition, and windows are scored strictly in index order — so the same
// submission stream produces bit-identical window counts, scores, and drift
// verdicts for ANY worker count or batch interleaving. This mirrors the
// repo-wide determinism convention and is what lets the drift tests assert
// the exact drifting window across thread counts.
//
// The reference profile comes from set_reference() (e.g. exit fractions
// stored in a checkpoint .meta or measured offline) or, when none was given,
// is captured from the first completed window that carries samples — the
// "startup profile" of the live stream. All methods are internally
// synchronized; record() is called by concurrent engine workers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace cdl::serve {

struct DriftConfig {
  /// Observations (served + missing) per window. Smaller = faster detection,
  /// noisier scores.
  std::size_t window = 256;
  /// Chi-square score at or above which a scored window counts as drift.
  /// With S stages + B confidence bins the statistic has roughly S + B - 2
  /// degrees of freedom under the null; the default sits far above the
  /// corresponding 99th percentile so ordinary sampling noise stays quiet.
  double threshold = 50.0;
  /// Bins of the pooled exit-confidence histogram over [0, 1].
  std::size_t confidence_bins = 10;
  /// Floor for expected counts in the chi-square denominator (guards
  /// reference categories with (near-)zero mass).
  double min_expected = 1.0;
};

/// One scored window, drained via take_scored().
struct DriftWindowResult {
  std::uint64_t index = 0;     ///< window ordinal (seq / window)
  std::size_t samples = 0;     ///< observations carrying an exit stage
  std::size_t missing = 0;     ///< expired/rejected slots (no exit data)
  std::vector<std::uint64_t> exits;  ///< per-stage exit counts
  double score = 0.0;          ///< chi-square distance vs the reference
  bool reference = false;      ///< this window became the reference profile
  bool drift = false;          ///< score >= threshold (never for reference)
};

class ExitDriftMonitor {
 public:
  /// `num_stages` sizes the per-window exit-count vector. Throws
  /// std::invalid_argument on window == 0, confidence_bins == 0 or
  /// num_stages == 0.
  ExitDriftMonitor(std::size_t num_stages, DriftConfig config);

  /// Installs an explicit reference exit distribution (normalized
  /// internally; must have num_stages entries with a positive sum, else
  /// std::invalid_argument). With an explicit reference the confidence term
  /// is skipped — only exit fractions are scored.
  void set_reference(const std::vector<double>& exit_fractions);

  /// One served result: submission sequence `seq` exited at `stage` with
  /// exit confidence `confidence` in [0, 1]. Stages beyond num_stages - 1
  /// are clamped (defensive; the engine never produces them).
  void record(std::uint64_t seq, std::size_t stage, double confidence);
  /// A sequence slot that will never produce a served result (expired,
  /// rejected after seq assignment, shutdown). Keeps windows dense so they
  /// still complete.
  void record_missing(std::uint64_t seq);

  /// Windows scored since the last call, in window-index order. The engine
  /// drains this after each batch to publish scores/events.
  [[nodiscard]] std::vector<DriftWindowResult> take_scored();

  [[nodiscard]] std::uint64_t windows_scored() const;
  [[nodiscard]] std::uint64_t drift_events() const;
  /// Latest / maximum window score; -1 before the first scored window.
  [[nodiscard]] double latest_score() const;
  [[nodiscard]] double max_score() const;
  /// Index of the first window that raised a drift event; -1 = none.
  [[nodiscard]] std::int64_t first_drift_window() const;
  [[nodiscard]] bool has_reference() const;
  /// Reference exit fractions (empty before one is captured or set).
  [[nodiscard]] std::vector<double> reference() const;
  [[nodiscard]] const DriftConfig& config() const { return config_; }
  [[nodiscard]] std::size_t num_stages() const { return num_stages_; }

 private:
  struct Window {
    std::vector<std::uint64_t> exits;
    std::vector<std::uint64_t> confidence;
    std::size_t samples = 0;
    std::size_t observed = 0;  ///< samples + missing
  };

  Window& window_slot(std::uint64_t index);
  /// Scores every complete window at the cursor, in index order.
  void advance();
  [[nodiscard]] double chi_square(const std::vector<std::uint64_t>& observed,
                                  const std::vector<double>& ref) const;

  const std::size_t num_stages_;
  const DriftConfig config_;

  mutable std::mutex mutex_;
  std::map<std::uint64_t, Window> pending_;
  std::uint64_t next_to_score_ = 0;
  std::vector<double> ref_exit_;        ///< fractions; empty = no reference
  std::vector<double> ref_confidence_;  ///< empty = confidence term skipped
  std::vector<DriftWindowResult> scored_;  ///< drained by take_scored()
  std::uint64_t windows_scored_ = 0;
  std::uint64_t drift_events_ = 0;
  double latest_score_ = -1.0;
  double max_score_ = -1.0;
  std::int64_t first_drift_window_ = -1;
};

}  // namespace cdl::serve
