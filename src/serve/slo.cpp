#include "serve/slo.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace cdl::serve {

namespace {
constexpr std::size_t kLatencyBins = 64;
}  // namespace

SloTracker::SloTracker(obs::Registry* registry, double latency_hi_ms)
    : registry_(registry), latency_hi_ms_(latency_hi_ms) {}

SloTracker::PerModel& SloTracker::model_slot(std::size_t model) {
  if (model >= models_.size()) models_.resize(model + 1);
  PerModel& m = models_[model];
  if (m.name.empty()) m.name = "model" + std::to_string(model);
  return m;
}

void SloTracker::name_model(std::size_t model, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (model >= models_.size()) models_.resize(model + 1);
  models_[model].name = std::move(name);
}

void SloTracker::bump(const PerModel& m, const char* status) {
  if (registry_ == nullptr) return;
  registry_
      ->counter("cdl_serve_requests_total", "Serving requests by outcome",
                {{"model", m.name}, {"status", status}})
      .inc();
}

void SloTracker::record_rejected(std::size_t model) {
  std::lock_guard<std::mutex> lock(mutex_);
  PerModel& m = model_slot(model);
  ++m.rejected;
  bump(m, "rejected");
}

void SloTracker::record_accepted(std::size_t model) {
  std::lock_guard<std::mutex> lock(mutex_);
  (void)model_slot(model).accepted++;
}

void SloTracker::record_expired(std::size_t model, std::uint64_t queue_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  PerModel& m = model_slot(model);
  ++m.expired;
  ++m.slo_miss;  // an expired request missed its SLO by definition
  bump(m, "expired");
  if (registry_ != nullptr) {
    registry_
        ->counter("cdl_serve_slo_miss_total",
                  "Requests that missed their deadline", {{"model", m.name}})
        .inc();
    registry_
        ->histogram("cdl_serve_latency_ms",
                    "Request latency (queue + inference)", 0.0, latency_hi_ms_,
                    kLatencyBins, {{"model", m.name}})
        .record(static_cast<double>(queue_ns) / 1e6);
  }
}

void SloTracker::record_shutdown(std::size_t model) {
  std::lock_guard<std::mutex> lock(mutex_);
  PerModel& m = model_slot(model);
  ++m.shutdown;
  bump(m, "shutdown");
}

void SloTracker::record_completed(std::size_t model, std::uint64_t latency_ns,
                                  bool slo_miss) {
  std::lock_guard<std::mutex> lock(mutex_);
  PerModel& m = model_slot(model);
  const double ms = static_cast<double>(latency_ns) / 1e6;
  ++m.completed;
  if (slo_miss) ++m.slo_miss;
  m.latency_sum_ms += ms;
  m.latency_max_ms = std::max(m.latency_max_ms, ms);
  m.latencies_ms.push_back(ms);
  bump(m, "ok");
  if (registry_ != nullptr) {
    if (slo_miss) {
      registry_
          ->counter("cdl_serve_slo_miss_total",
                    "Requests that missed their deadline", {{"model", m.name}})
          .inc();
    }
    registry_
        ->histogram("cdl_serve_latency_ms",
                    "Request latency (queue + inference)", 0.0, latency_hi_ms_,
                    kLatencyBins, {{"model", m.name}})
        .record(ms);
  }
}

void SloTracker::record_batch(std::size_t model, std::size_t rows) {
  std::lock_guard<std::mutex> lock(mutex_);
  PerModel& m = model_slot(model);
  ++m.batches;
  m.batched_rows += rows;
  if (registry_ != nullptr) {
    registry_
        ->counter("cdl_serve_batches_total", "Batches dispatched",
                  {{"model", m.name}})
        .inc();
    registry_
        ->histogram("cdl_serve_batch_size", "Rows per dispatched batch", 0.0,
                    512.0, 64, {{"model", m.name}})
        .record(static_cast<double>(rows));
  }
}

void SloTracker::set_queue_depth(std::size_t depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (registry_ != nullptr) {
    registry_->gauge("cdl_serve_queue_depth", "Requests currently queued")
        .set(static_cast<double>(depth));
  }
}

SloSummary SloTracker::summary(std::size_t model) const {
  std::lock_guard<std::mutex> lock(mutex_);
  SloSummary s;
  if (model >= models_.size()) return s;
  const PerModel& m = models_[model];
  s.model = m.name;
  s.accepted = m.accepted;
  s.completed = m.completed;
  s.rejected = m.rejected;
  s.expired = m.expired;
  s.shutdown = m.shutdown;
  s.submitted = m.accepted + m.rejected;
  s.slo_miss = m.slo_miss;
  s.batches = m.batches;
  s.mean_batch = m.batches == 0 ? 0.0
                                : static_cast<double>(m.batched_rows) /
                                      static_cast<double>(m.batches);
  if (!m.latencies_ms.empty()) {
    s.p50_ms = obs::percentile(m.latencies_ms, 0.50);
    s.p95_ms = obs::percentile(m.latencies_ms, 0.95);
    s.p99_ms = obs::percentile(m.latencies_ms, 0.99);
    s.mean_ms =
        m.latency_sum_ms / static_cast<double>(m.latencies_ms.size());
    s.max_ms = m.latency_max_ms;
  }
  return s;
}

std::vector<SloSummary> SloTracker::summaries() const {
  std::size_t n = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    n = models_.size();
  }
  std::vector<SloSummary> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(summary(i));
  return out;
}

}  // namespace cdl::serve
