#include "serve/slo.h"

#include <algorithm>
#include <ostream>
#include <utility>

#include "obs/metrics.h"

namespace cdl::serve {

namespace {
constexpr std::size_t kLatencyBins = 64;
}  // namespace

SloTracker::SloTracker(obs::Registry* registry, double latency_hi_ms,
                       double energy_hi_pj)
    : registry_(registry),
      latency_hi_ms_(latency_hi_ms),
      energy_hi_pj_(energy_hi_pj) {}

SloTracker::PerModel& SloTracker::model_slot(std::size_t model) {
  if (model >= models_.size()) models_.resize(model + 1);
  PerModel& m = models_[model];
  if (m.name.empty()) m.name = "model" + std::to_string(model);
  return m;
}

void SloTracker::name_model(std::size_t model, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (model >= models_.size()) models_.resize(model + 1);
  models_[model].name = std::move(name);
}

void SloTracker::bump(const PerModel& m, const char* status) {
  if (registry_ == nullptr) return;
  registry_
      ->counter("cdl_serve_requests_total", "Serving requests by outcome",
                {{"model", m.name}, {"status", status}})
      .inc();
}

void SloTracker::record_rejected(std::size_t model) {
  std::lock_guard<std::mutex> lock(mutex_);
  PerModel& m = model_slot(model);
  ++m.rejected;
  bump(m, "rejected");
}

void SloTracker::record_accepted(std::size_t model) {
  std::lock_guard<std::mutex> lock(mutex_);
  (void)model_slot(model).accepted++;
}

void SloTracker::record_expired(std::size_t model, std::uint64_t queue_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  PerModel& m = model_slot(model);
  ++m.expired;
  ++m.slo_miss;  // an expired request missed its SLO by definition
  bump(m, "expired");
  if (registry_ != nullptr) {
    registry_
        ->counter("cdl_serve_slo_miss_total",
                  "Requests that missed their deadline", {{"model", m.name}})
        .inc();
    registry_
        ->histogram("cdl_serve_latency_ms",
                    "Request latency (queue + inference)", 0.0, latency_hi_ms_,
                    kLatencyBins, {{"model", m.name}})
        .record(static_cast<double>(queue_ns) / 1e6);
  }
}

void SloTracker::record_shutdown(std::size_t model) {
  std::lock_guard<std::mutex> lock(mutex_);
  PerModel& m = model_slot(model);
  ++m.shutdown;
  bump(m, "shutdown");
}

void SloTracker::record_phase_hist(const char* family, const char* help,
                                   const PerModel& m, double ms) {
  registry_
      ->histogram(family, help, 0.0, latency_hi_ms_, kLatencyBins,
                  {{"model", m.name}})
      .record(ms);
}

void SloTracker::record_completed(std::size_t model, std::uint64_t latency_ns,
                                  std::uint64_t queue_ns,
                                  std::uint64_t batch_wait_ns,
                                  std::uint64_t compute_ns, bool slo_miss,
                                  double energy_pj) {
  std::lock_guard<std::mutex> lock(mutex_);
  PerModel& m = model_slot(model);
  const double ms = static_cast<double>(latency_ns) / 1e6;
  const double queue_ms = static_cast<double>(queue_ns) / 1e6;
  const double batch_ms = static_cast<double>(batch_wait_ns) / 1e6;
  const double compute_ms = static_cast<double>(compute_ns) / 1e6;
  ++m.completed;
  if (slo_miss) ++m.slo_miss;
  m.latency_sum_ms += ms;
  m.latency_max_ms = std::max(m.latency_max_ms, ms);
  m.latencies_ms.push_back(ms);
  m.queue_ms.push_back(queue_ms);
  m.batch_ms.push_back(batch_ms);
  m.compute_ms.push_back(compute_ms);
  m.queue_sum_ms += queue_ms;
  m.batch_sum_ms += batch_ms;
  m.compute_sum_ms += compute_ms;
  m.energies_pj.push_back(energy_pj);
  m.energy_sum_pj += energy_pj;
  m.energy_max_pj = std::max(m.energy_max_pj, energy_pj);
  bump(m, "ok");
  if (registry_ != nullptr) {
    if (slo_miss) {
      registry_
          ->counter("cdl_serve_slo_miss_total",
                    "Requests that missed their deadline", {{"model", m.name}})
          .inc();
    }
    registry_
        ->histogram("cdl_serve_latency_ms",
                    "Request latency (queue + inference)", 0.0, latency_hi_ms_,
                    kLatencyBins, {{"model", m.name}})
        .record(ms);
    record_phase_hist("cdl_serve_phase_queue_ms",
                      "Latency from submit to queue pop", m, queue_ms);
    record_phase_hist("cdl_serve_phase_batch_ms",
                      "Latency from queue pop to batch formation", m,
                      batch_ms);
    record_phase_hist("cdl_serve_phase_compute_ms",
                      "Latency from batch formation to inference done", m,
                      compute_ms);
    registry_
        ->histogram("cdl_serve_energy_pj",
                    "Attributed 45nm energy per served request (picojoules)",
                    0.0, energy_hi_pj_, kLatencyBins, {{"model", m.name}})
        .record(energy_pj);
    registry_
        ->counter("cdl_serve_energy_total_joules",
                  "Cumulative attributed energy of served requests (joules)",
                  {{"model", m.name}})
        .inc(energy_pj * 1e-12);
  }
}

void SloTracker::record_exit(std::size_t model, std::size_t stage) {
  std::lock_guard<std::mutex> lock(mutex_);
  PerModel& m = model_slot(model);
  if (stage >= m.exits.size()) m.exits.resize(stage + 1, 0);
  ++m.exits[stage];
  if (registry_ != nullptr) {
    std::uint64_t total = 0;
    for (const std::uint64_t e : m.exits) total += e;
    for (std::size_t s = 0; s < m.exits.size(); ++s) {
      const std::string label = std::to_string(s);
      if (s == stage) {
        registry_
            ->counter("cdl_serve_exits_total",
                      "Served results by cascade exit stage",
                      {{"model", m.name}, {"stage", label}})
            .inc();
      }
      registry_
          ->gauge("cdl_serve_exit_fraction",
                  "Fraction of served results exiting at each stage",
                  {{"model", m.name}, {"stage", label}})
          .set(static_cast<double>(m.exits[s]) / static_cast<double>(total));
    }
  }
}

void SloTracker::record_drift(std::size_t model, std::uint64_t window,
                              double score, bool drift) {
  std::lock_guard<std::mutex> lock(mutex_);
  PerModel& m = model_slot(model);
  ++m.drift_windows;
  m.drift_score = score;
  m.drift_max_score = std::max(m.drift_max_score, score);
  if (drift) {
    ++m.drift_events;
    if (m.first_drift_window < 0) {
      m.first_drift_window = static_cast<std::int64_t>(window);
    }
  }
  if (registry_ != nullptr) {
    registry_
        ->gauge("cdl_serve_drift_score",
                "Exit-profile drift score of the latest scored window",
                {{"model", m.name}})
        .set(score);
    if (drift) {
      registry_
          ->counter("cdl_serve_drift_events_total",
                    "Drift windows whose score crossed the threshold",
                    {{"model", m.name}})
          .inc();
    }
  }
}

void SloTracker::record_energy_window(std::uint64_t window,
                                      double rate_mj_per_s, bool breach) {
  (void)window;  // breach indices live in the watchdog / report block
  std::lock_guard<std::mutex> lock(mutex_);
  if (registry_ != nullptr) {
    registry_
        ->gauge("cdl_serve_energy_rate_mj_per_s",
                "Average power of the latest closed energy-budget window")
        .set(rate_mj_per_s);
    if (breach) {
      registry_
          ->counter("cdl_serve_energy_budget_breaches_total",
                    "Energy-budget windows whose rate exceeded the budget")
          .inc();
    }
  }
}

void SloTracker::record_batch(std::size_t model, std::size_t rows) {
  std::lock_guard<std::mutex> lock(mutex_);
  PerModel& m = model_slot(model);
  ++m.batches;
  m.batched_rows += rows;
  if (registry_ != nullptr) {
    registry_
        ->counter("cdl_serve_batches_total", "Batches dispatched",
                  {{"model", m.name}})
        .inc();
    registry_
        ->histogram("cdl_serve_batch_size", "Rows per dispatched batch", 0.0,
                    512.0, 64, {{"model", m.name}})
        .record(static_cast<double>(rows));
  }
}

void SloTracker::set_queue_depth(std::size_t depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (registry_ != nullptr) {
    registry_->gauge("cdl_serve_queue_depth", "Requests currently queued")
        .set(static_cast<double>(depth));
  }
}

SloSummary SloTracker::summary(std::size_t model) const {
  std::lock_guard<std::mutex> lock(mutex_);
  SloSummary s;
  if (model >= models_.size()) return s;
  const PerModel& m = models_[model];
  s.model = m.name;
  s.accepted = m.accepted;
  s.completed = m.completed;
  s.rejected = m.rejected;
  s.expired = m.expired;
  s.shutdown = m.shutdown;
  s.submitted = m.accepted + m.rejected;
  s.slo_miss = m.slo_miss;
  s.batches = m.batches;
  s.mean_batch = m.batches == 0 ? 0.0
                                : static_cast<double>(m.batched_rows) /
                                      static_cast<double>(m.batches);
  if (!m.latencies_ms.empty()) {
    const double n = static_cast<double>(m.latencies_ms.size());
    s.p50_ms = obs::percentile(m.latencies_ms, 0.50);
    s.p95_ms = obs::percentile(m.latencies_ms, 0.95);
    s.p99_ms = obs::percentile(m.latencies_ms, 0.99);
    s.mean_ms = m.latency_sum_ms / n;
    s.max_ms = m.latency_max_ms;
    s.queue_p50_ms = obs::percentile(m.queue_ms, 0.50);
    s.queue_p95_ms = obs::percentile(m.queue_ms, 0.95);
    s.queue_p99_ms = obs::percentile(m.queue_ms, 0.99);
    s.queue_mean_ms = m.queue_sum_ms / n;
    s.batch_p50_ms = obs::percentile(m.batch_ms, 0.50);
    s.batch_p95_ms = obs::percentile(m.batch_ms, 0.95);
    s.batch_p99_ms = obs::percentile(m.batch_ms, 0.99);
    s.batch_mean_ms = m.batch_sum_ms / n;
    s.compute_p50_ms = obs::percentile(m.compute_ms, 0.50);
    s.compute_p95_ms = obs::percentile(m.compute_ms, 0.95);
    s.compute_p99_ms = obs::percentile(m.compute_ms, 0.99);
    s.compute_mean_ms = m.compute_sum_ms / n;
    s.energy_p50_pj = obs::percentile(m.energies_pj, 0.50);
    s.energy_p95_pj = obs::percentile(m.energies_pj, 0.95);
    s.energy_p99_pj = obs::percentile(m.energies_pj, 0.99);
    s.energy_mean_pj = m.energy_sum_pj / n;
    s.energy_max_pj = m.energy_max_pj;
  }
  s.energy_total_pj = m.energy_sum_pj;
  s.exits = m.exits;
  s.drift_windows = m.drift_windows;
  s.drift_events = m.drift_events;
  s.drift_score = m.drift_score;
  s.drift_max_score = m.drift_max_score;
  s.first_drift_window = m.first_drift_window;
  return s;
}

void SloTracker::write_openmetrics(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (registry_ != nullptr) registry_->write_openmetrics(os);
}

std::vector<SloSummary> SloTracker::summaries() const {
  std::size_t n = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    n = models_.size();
  }
  std::vector<SloSummary> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(summary(i));
  return out;
}

}  // namespace cdl::serve
