#include "serve/observer.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace cdl::serve {

namespace {

// The OpenMetrics content type Prometheus negotiates for text exposition.
constexpr const char* kMetricsContentType =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a scraper that disconnects mid-response must not SIGPIPE
    // the whole process; the EPIPE return simply ends the write loop.
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

void respond(int fd, const char* status, const char* content_type,
             const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.1 " << status << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  send_all(fd, os.str());
}

/// Reads until the end of the request head ("\r\n\r\n") and returns the
/// request target ("/metrics"), or "" on a malformed / non-GET request.
/// Bodies are unsupported by design: every route is a read.
std::string read_target(int fd) {
  std::string head;
  char buf[1024];
  while (head.find("\r\n\r\n") == std::string::npos && head.size() < 8192) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    head.append(buf, static_cast<std::size_t>(n));
  }
  if (head.compare(0, 4, "GET ") != 0) return "";
  const std::size_t end = head.find(' ', 4);
  if (end == std::string::npos) return "";
  return head.substr(4, end - 4);
}

}  // namespace

HttpObserver::HttpObserver(int port, Handler metrics, Handler report)
    : metrics_(std::move(metrics)), report_(std::move(report)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("HttpObserver: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // observability stays local
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 8) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("HttpObserver: cannot listen on port ") +
                             std::to_string(port) + ": " + std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = static_cast<int>(ntohs(addr.sin_port));
  thread_ = std::thread([this] { serve_loop(); });
}

HttpObserver::~HttpObserver() { stop(); }

void HttpObserver::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() forces the blocking accept() to return so the thread can
  // observe running_ == false and exit.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpObserver::serve_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) return;
      if (errno == EINTR) continue;
      return;  // listener socket is gone; nothing left to serve
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpObserver::handle_connection(int fd) {
  const std::string target = read_target(fd);
  served_.fetch_add(1, std::memory_order_acq_rel);
  if (target == "/metrics") {
    std::ostringstream body;
    metrics_(body);
    respond(fd, "200 OK", kMetricsContentType, body.str());
  } else if (target == "/healthz") {
    respond(fd, "200 OK", "text/plain; charset=utf-8", "ok\n");
  } else if (target == "/report") {
    std::ostringstream body;
    report_(body);
    respond(fd, "200 OK", "application/json", body.str());
  } else if (target == "/quitquitquit") {
    quit_.store(true, std::memory_order_release);
    respond(fd, "200 OK", "text/plain; charset=utf-8", "bye\n");
  } else {
    respond(fd, "404 Not Found", "text/plain; charset=utf-8",
            "not found\n");
  }
}

}  // namespace cdl::serve
