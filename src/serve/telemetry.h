// TelemetrySnapshotter: periodic JSONL snapshots of a running server.
//
// The SLO tracker and metrics registry describe a run after shutdown; this
// class makes the same numbers observable while the server is up. At a
// configurable interval (measured on the engine's injected Clock, so tests
// drive it with a ManualClock) it appends one self-contained JSON line —
// schema cdl-serve-telemetry/1 — to an append-only stream that an operator
// can tail without stopping the server:
//
//   {"schema":"cdl-serve-telemetry/1","event":"start","t_ns":...}   (header)
//   {"schema":"cdl-serve-telemetry/1","event":"sample","t_ns":...,
//    "queue_depth":...,"in_flight":...,"models":[...],"metrics":{...}}
//
// The caller (ServingEngine) renders the body of each sample; the
// snapshotter owns the cadence, the file, line framing, byte accounting and
// size-based rotation (the current file is renamed to <path>.1 and a fresh
// one is started, so disk use stays bounded at ~2x rotate_bytes).
//
// Thread safety: sample() is internally serialized and begins with a relaxed
// load of the next-due time, so calling it from every worker iteration costs
// one atomic load while not due.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>

#include "serve/clock.h"

namespace cdl::serve {

struct TelemetryConfig {
  /// JSONL output path; empty = telemetry disabled.
  std::string path;
  /// Sampling interval on the engine clock.
  std::uint64_t interval_ns = 1'000'000'000;
  /// Rotate when the current file reaches this many bytes (0 = never).
  std::uint64_t rotate_bytes = 0;
};

class TelemetrySnapshotter {
 public:
  /// Opens config.path (throws std::runtime_error when unwritable) and
  /// writes the header line. `clock` must outlive the snapshotter.
  /// `header_extra` is an optional pre-rendered JSON fragment appended to
  /// the header object (e.g. `,"models":["a","b"]`).
  TelemetrySnapshotter(TelemetryConfig config, const Clock* clock,
                       const std::string& header_extra = "");

  TelemetrySnapshotter(const TelemetrySnapshotter&) = delete;
  TelemetrySnapshotter& operator=(const TelemetrySnapshotter&) = delete;

  /// Writes one sample line when the interval has elapsed (or `force`).
  /// `body` renders the sample's fields — everything after the standard
  /// `"schema":...,"event":"sample","t_ns":...` prefix, starting with a
  /// comma. Returns true when a line was written.
  bool sample(const std::function<void(std::ostream&)>& body,
              bool force = false);

  /// True when the interval has elapsed since the last written sample.
  [[nodiscard]] bool due() const;

  /// Absolute clock time of the next scheduled sample (workers cap their
  /// queue waits at this so sampling keeps its cadence under light load).
  [[nodiscard]] std::uint64_t next_due_ns() const {
    return next_due_ns_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rotations() const {
    return rotations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const TelemetryConfig& config() const { return config_; }

  static constexpr const char* kSchema = "cdl-serve-telemetry/1";

 private:
  void open_file();  ///< (re)opens config_.path and writes the header
  void write_line(const std::string& line);

  TelemetryConfig config_;
  const Clock* clock_;
  std::string header_extra_;

  std::mutex mutex_;  ///< guards os_, bytes_
  std::ofstream os_;
  std::uint64_t bytes_ = 0;
  std::atomic<std::uint64_t> next_due_ns_{0};
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> rotations_{0};
};

}  // namespace cdl::serve
