// SloTracker: per-request latency and SLO accounting for the serving engine.
//
// Every request outcome is recorded per model: accepted/rejected/expired/
// completed counters, exact latency samples (for type-7 p50/p95/p99 via
// obs::percentile), deadline misses, batch-size statistics, the exact
// per-phase latency decomposition (queue wait / batch wait / compute — the
// three stamps sum bit-exactly to the end-to-end latency), the per-stage
// exit counts of served results, and the drift monitor's window scores.
// When a Registry is attached the same numbers are mirrored into labelled
// OpenMetrics families:
//
//   cdl_serve_requests_total{model=...,status=ok|rejected|expired|shutdown}
//   cdl_serve_slo_miss_total{model=...}
//   cdl_serve_latency_ms{model=...}         (histogram)
//   cdl_serve_phase_queue_ms{model=...}     (histogram, submit -> dequeue)
//   cdl_serve_phase_batch_ms{model=...}     (histogram, dequeue -> batch)
//   cdl_serve_phase_compute_ms{model=...}   (histogram, batch -> done)
//   cdl_serve_batch_size{model=...}         (histogram)
//   cdl_serve_batches_total{model=...}
//   cdl_serve_exits_total{model=...,stage=...}
//   cdl_serve_exit_fraction{model=...,stage=...}   (gauge)
//   cdl_serve_drift_score{model=...}        (gauge, latest scored window)
//   cdl_serve_drift_events_total{model=...}
//   cdl_serve_energy_pj{model=...}          (histogram, per-request energy)
//   cdl_serve_energy_total_joules{model=...}
//   cdl_serve_energy_rate_mj_per_s          (gauge, latest budget window)
//   cdl_serve_energy_budget_breaches_total  (engine-wide)
//   cdl_serve_queue_depth                   (gauge, engine-wide)
//
// The tracker serializes its own updates with an internal mutex (worker
// threads complete requests concurrently), which also guards the registry
// instruments it owns — the registry's documented "guard concurrent writers
// externally" contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "serve/request.h"

namespace cdl::serve {

/// One model's aggregated serving statistics (a deterministic snapshot).
struct SloSummary {
  std::string model;
  std::uint64_t submitted = 0;  ///< accepted + rejected
  std::uint64_t accepted = 0;   ///< entered the queue
  std::uint64_t completed = 0;  ///< served with inference (status kOk)
  std::uint64_t rejected = 0;   ///< backpressure (queue full)
  std::uint64_t expired = 0;    ///< deadline passed before dispatch
  std::uint64_t shutdown = 0;   ///< aborted before service
  std::uint64_t slo_miss = 0;   ///< expired + completed past their deadline
  std::uint64_t batches = 0;    ///< batches dispatched
  double mean_batch = 0.0;      ///< completed / batches
  /// Exact percentiles over completed requests' latencies; 0 when none.
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  /// Per-phase decomposition over the same completed requests. The phase
  /// means sum to mean_ms (up to double rounding): the three stamps
  /// partition each request's latency exactly.
  double queue_p50_ms = 0.0, queue_p95_ms = 0.0, queue_p99_ms = 0.0;
  double queue_mean_ms = 0.0;
  double batch_p50_ms = 0.0, batch_p95_ms = 0.0, batch_p99_ms = 0.0;
  double batch_mean_ms = 0.0;
  double compute_p50_ms = 0.0, compute_p95_ms = 0.0, compute_p99_ms = 0.0;
  double compute_mean_ms = 0.0;
  /// Served results by cascade exit stage (index = stage); sums to
  /// `completed`. Empty when nothing completed.
  std::vector<std::uint64_t> exits;
  /// Drift monitor mirror: scored windows, events raised, latest / max
  /// window score (-1 before the first scored window), first drifting
  /// window index (-1 = none yet).
  std::uint64_t drift_windows = 0;
  std::uint64_t drift_events = 0;
  double drift_score = -1.0;
  double drift_max_score = -1.0;
  std::int64_t first_drift_window = -1;
  /// Attributed energy over completed requests (exact percentiles over the
  /// per-request samples, same estimator as latency); 0 when none completed.
  double energy_p50_pj = 0.0;
  double energy_p95_pj = 0.0;
  double energy_p99_pj = 0.0;
  double energy_mean_pj = 0.0;
  double energy_max_pj = 0.0;
  double energy_total_pj = 0.0;  ///< cumulative joules = this * 1e-12
};

class SloTracker {
 public:
  /// `registry` may be null (pure in-memory accounting); when set it must
  /// outlive the tracker. `latency_hi_ms` / `energy_hi_pj` bound the
  /// exported latency / energy histograms (exact percentiles come from the
  /// raw samples either way).
  explicit SloTracker(obs::Registry* registry = nullptr,
                      double latency_hi_ms = 1000.0,
                      double energy_hi_pj = 1.0e7);

  void record_rejected(std::size_t model);
  void record_accepted(std::size_t model);
  void record_expired(std::size_t model, std::uint64_t queue_ns);
  void record_shutdown(std::size_t model);
  /// `queue_ns + batch_wait_ns + compute_ns == latency_ns` — the engine
  /// derives all four from the same clock stamps, so the decomposition is
  /// exact, not approximate. `energy_pj` is the request's attributed energy
  /// (Response::energy_pj); sums accumulate in completion-record order.
  void record_completed(std::size_t model, std::uint64_t latency_ns,
                        std::uint64_t queue_ns, std::uint64_t batch_wait_ns,
                        std::uint64_t compute_ns, bool slo_miss,
                        double energy_pj = 0.0);
  void record_batch(std::size_t model, std::size_t rows);
  /// One served result exited at cascade stage `stage`.
  void record_exit(std::size_t model, std::size_t stage);
  /// Mirrors one scored drift window (latest score gauge, event counter).
  void record_drift(std::size_t model, std::uint64_t window, double score,
                    bool drift);
  /// Mirrors one closed energy-budget window (engine-wide, not per-model):
  /// latest rate gauge plus a breach counter when the window exceeded the
  /// budget.
  void record_energy_window(std::uint64_t window, double rate_mj_per_s,
                            bool breach);
  void set_queue_depth(std::size_t depth);

  /// Deterministic per-model snapshot (models in registration order).
  [[nodiscard]] SloSummary summary(std::size_t model) const;
  [[nodiscard]] std::vector<SloSummary> summaries() const;

  /// Registers `name` for model index `model` (labels + summaries). The
  /// engine calls this once per registry entry before serving starts.
  void name_model(std::size_t model, std::string name);

  /// Writes the attached registry's OpenMetrics exposition under the
  /// tracker's mutex — the same lock every record_* takes — so a scraper
  /// thread (the HTTP observer) never races the engine's workers. Writes
  /// nothing when no registry is attached.
  void write_openmetrics(std::ostream& os) const;

 private:
  struct PerModel {
    std::string name;
    std::uint64_t accepted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t expired = 0;
    std::uint64_t shutdown = 0;
    std::uint64_t slo_miss = 0;
    std::uint64_t batches = 0;
    std::uint64_t batched_rows = 0;
    double latency_sum_ms = 0.0;
    double latency_max_ms = 0.0;
    std::vector<double> latencies_ms;  ///< completed requests, arrival order
    std::vector<double> queue_ms;      ///< phase samples, same order
    std::vector<double> batch_ms;
    std::vector<double> compute_ms;
    double queue_sum_ms = 0.0;
    double batch_sum_ms = 0.0;
    double compute_sum_ms = 0.0;
    std::vector<std::uint64_t> exits;  ///< per exit stage
    std::vector<double> energies_pj;   ///< completed requests, arrival order
    double energy_sum_pj = 0.0;
    double energy_max_pj = 0.0;
    std::uint64_t drift_windows = 0;
    std::uint64_t drift_events = 0;
    double drift_score = -1.0;
    double drift_max_score = -1.0;
    std::int64_t first_drift_window = -1;
  };

  PerModel& model_slot(std::size_t model);
  void bump(const PerModel& m, const char* status);
  void record_phase_hist(const char* family, const char* help,
                         const PerModel& m, double ms);

  mutable std::mutex mutex_;
  obs::Registry* registry_;
  double latency_hi_ms_;
  double energy_hi_pj_;
  std::vector<PerModel> models_;
};

}  // namespace cdl::serve
