#include "serve/model_registry.h"

#include <stdexcept>
#include <utility>

namespace cdl::serve {

std::size_t ModelRegistry::add(std::string name, ConditionalNetwork net) {
  if (name.empty()) {
    throw std::invalid_argument("ModelRegistry: model name must not be empty");
  }
  if (find(name).has_value()) {
    throw std::invalid_argument("ModelRegistry: duplicate model name '" +
                                name + "'");
  }
  entries_.push_back(Entry{std::move(name), std::move(net)});
  return entries_.size() - 1;
}

std::optional<std::size_t> ModelRegistry::find(const std::string& name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) return i;
  }
  return std::nullopt;
}

const ConditionalNetwork& ModelRegistry::net(std::size_t index) const {
  if (index >= entries_.size()) {
    throw std::out_of_range("ModelRegistry: bad model index");
  }
  return entries_[index].net;
}

const std::string& ModelRegistry::name(std::size_t index) const {
  if (index >= entries_.size()) {
    throw std::out_of_range("ModelRegistry: bad model index");
  }
  return entries_[index].name;
}

}  // namespace cdl::serve
