#include "serve/engine.h"

#include <stdexcept>
#include <utility>

namespace cdl::serve {

const char* to_string(PushResult r) {
  switch (r) {
    case PushResult::kOk:
      return "ok";
    case PushResult::kFull:
      return "full";
    case PushResult::kClosed:
      return "closed";
  }
  return "unknown";
}

const char* to_string(PopResult r) {
  switch (r) {
    case PopResult::kItem:
      return "item";
    case PopResult::kTimeout:
      return "timeout";
    case PopResult::kClosed:
      return "closed";
  }
  return "unknown";
}

const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kExpired:
      return "expired";
    case RequestStatus::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

const char* to_string(SubmitStatus s) {
  switch (s) {
    case SubmitStatus::kAccepted:
      return "accepted";
    case SubmitStatus::kQueueFull:
      return "queue_full";
    case SubmitStatus::kUnknownModel:
      return "unknown_model";
    case SubmitStatus::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

namespace {

/// A pre-failed receipt for requests that never enter the queue.
Submitted rejected_receipt(SubmitStatus status, std::uint64_t id,
                           std::size_t model) {
  std::promise<Response> promise;
  Submitted out;
  out.status = status;
  out.response = promise.get_future();
  Response resp;
  resp.status = RequestStatus::kRejected;
  resp.request_id = id;
  resp.model = model;
  promise.set_value(std::move(resp));
  return out;
}

}  // namespace

ServingEngine::ServingEngine(ModelRegistry models, EngineConfig config)
    : models_(std::move(models)),
      config_(config),
      clock_(config.clock != nullptr ? config.clock : &RealClock::instance()),
      slo_(config.registry),
      queue_(config.queue_capacity) {
  if (models_.empty()) {
    throw std::invalid_argument("ServingEngine: model registry is empty");
  }
  batchers_.reserve(models_.size());
  for (std::size_t m = 0; m < models_.size(); ++m) {
    batchers_.emplace_back(config_.batcher, clock_);
    slo_.name_model(m, models_.name(m));
  }
  inline_state_.workspaces.resize(models_.size());
  slo_.set_queue_depth(0);
  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ServingEngine::~ServingEngine() { shutdown(/*drain=*/true); }

Submitted ServingEngine::submit(std::size_t model, Tensor input,
                                std::uint64_t deadline_ns) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (model >= models_.size()) {
    return rejected_receipt(SubmitStatus::kUnknownModel, id, model);
  }
  if (!accepting_.load(std::memory_order_acquire)) {
    return rejected_receipt(SubmitStatus::kShutdown, id, model);
  }
  Request request;
  request.id = id;
  request.model = model;
  request.input = std::move(input);
  request.arrival_ns = clock_->now_ns();
  const std::uint64_t relative =
      deadline_ns != 0 ? deadline_ns : config_.default_deadline_ns;
  request.deadline_ns = relative != 0 ? request.arrival_ns + relative : 0;

  Submitted out;
  out.response = request.promise.get_future();
  switch (queue_.try_push(std::move(request))) {
    case PushResult::kOk:
      out.status = SubmitStatus::kAccepted;
      slo_.record_accepted(model);
      slo_.set_queue_depth(queue_.size());
      return out;
    case PushResult::kFull: {
      out.status = SubmitStatus::kQueueFull;
      slo_.record_rejected(model);
      Response resp;
      resp.status = RequestStatus::kRejected;
      resp.request_id = id;
      resp.model = model;
      request.promise.set_value(std::move(resp));
      return out;
    }
    case PushResult::kClosed: {
      out.status = SubmitStatus::kShutdown;
      Response resp;
      resp.status = RequestStatus::kRejected;
      resp.request_id = id;
      resp.model = model;
      request.promise.set_value(std::move(resp));
      return out;
    }
  }
  return out;  // unreachable
}

Submitted ServingEngine::submit(const std::string& model, Tensor input,
                                std::uint64_t deadline_ns) {
  const std::optional<std::size_t> index = models_.find(model);
  if (!index.has_value()) {
    const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
    return rejected_receipt(SubmitStatus::kUnknownModel, id, 0);
  }
  return submit(*index, std::move(input), deadline_ns);
}

std::size_t ServingEngine::integrate_queue() {
  std::size_t moved = 0;
  Request request;
  while (queue_.try_pop(request) == PopResult::kItem) {
    {
      std::lock_guard<std::mutex> lock(batch_mutex_);
      batchers_[request.model].add(std::move(request));
    }
    batcher_pending_.fetch_add(1, std::memory_order_relaxed);
    ++moved;
  }
  if (moved != 0) slo_.set_queue_depth(queue_.size());
  return moved;
}

std::uint64_t ServingEngine::earliest_wake() {
  std::lock_guard<std::mutex> lock(batch_mutex_);
  std::uint64_t wake = Clock::kNever;
  for (const DynamicBatcher& batcher : batchers_) {
    if (batcher.ready()) return 0;  // work due now — do not sleep
    wake = std::min(wake, batcher.next_wake_ns());
  }
  return wake;
}

std::size_t ServingEngine::dispatch_due(bool draining, WorkerState& state) {
  // Phase 1: under the batcher lock, decide what to run — but run nothing.
  std::vector<std::pair<std::size_t, std::vector<Request>>> expired;
  std::vector<std::pair<std::size_t, std::vector<Request>>> batches;
  {
    std::lock_guard<std::mutex> lock(batch_mutex_);
    for (std::size_t m = 0; m < batchers_.size(); ++m) {
      DynamicBatcher& batcher = batchers_[m];
      std::vector<Request> dead = batcher.take_expired();
      if (!dead.empty()) {
        batcher_pending_.fetch_sub(dead.size(), std::memory_order_relaxed);
        expired.emplace_back(m, std::move(dead));
      }
      while (batcher.ready()) {
        std::vector<Request> batch = batcher.take();
        batcher_pending_.fetch_sub(batch.size(), std::memory_order_relaxed);
        batches.emplace_back(m, std::move(batch));
      }
      if (draining) {
        std::vector<Request> rest = batcher.drain();
        if (!rest.empty()) {
          batcher_pending_.fetch_sub(rest.size(), std::memory_order_relaxed);
          batches.emplace_back(m, std::move(rest));
        }
      }
    }
  }

  // Phase 2: execute outside the lock so models run concurrently.
  std::size_t terminal = 0;
  for (auto& [model, dead] : expired) {
    for (Request& request : dead) {
      fail_request(std::move(request), RequestStatus::kExpired);
      ++terminal;
    }
  }
  const bool abort =
      draining && !drain_on_shutdown_.load(std::memory_order_acquire);
  for (auto& [model, batch] : batches) {
    terminal += batch.size();
    if (abort) {
      for (Request& request : batch) {
        fail_request(std::move(request), RequestStatus::kShutdown);
      }
    } else {
      execute_batch(model, std::move(batch), state);
    }
  }
  return terminal;
}

void ServingEngine::execute_batch(std::size_t model,
                                  std::vector<Request> batch,
                                  WorkerState& state) {
  if (batch.empty()) return;
  state.inputs.clear();
  for (Request& request : batch) {
    state.inputs.push_back(std::move(request.input));
  }
  models_.net(model).classify_batch_into(state.inputs, state.results,
                                         state.workspaces[model],
                                         config_.pool);
  const std::uint64_t done_ns = clock_->now_ns();
  slo_.record_batch(model, batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Request& request = batch[i];
    Response resp;
    resp.status = RequestStatus::kOk;
    resp.result = state.results[i];
    resp.request_id = request.id;
    resp.model = model;
    resp.latency_ns = done_ns - request.arrival_ns;
    resp.batch_size = batch.size();
    // Matches DynamicBatcher::take_expired: a request is dead AT its
    // deadline instant, so completion then is already a miss.
    resp.slo_miss = request.deadline_ns != 0 && done_ns >= request.deadline_ns;
    slo_.record_completed(model, resp.latency_ns, resp.slo_miss);
    request.promise.set_value(std::move(resp));
  }
}

void ServingEngine::fail_request(Request request, RequestStatus status) {
  const std::uint64_t now_ns = clock_->now_ns();
  Response resp;
  resp.status = status;
  resp.request_id = request.id;
  resp.model = request.model;
  resp.latency_ns = now_ns > request.arrival_ns ? now_ns - request.arrival_ns
                                                : 0;
  resp.slo_miss = status == RequestStatus::kExpired;
  if (status == RequestStatus::kExpired) {
    slo_.record_expired(request.model, resp.latency_ns);
  } else if (status == RequestStatus::kShutdown) {
    slo_.record_shutdown(request.model);
  }
  request.promise.set_value(std::move(resp));
}

std::size_t ServingEngine::run_once() {
  std::lock_guard<std::mutex> lock(inline_mutex_);
  integrate_queue();
  return dispatch_due(/*draining=*/false, inline_state_);
}

std::size_t ServingEngine::in_flight() const {
  return queue_.size() + batcher_pending_.load(std::memory_order_relaxed);
}

void ServingEngine::worker_loop(std::size_t worker) {
  (void)worker;
  WorkerState state;
  state.workspaces.resize(models_.size());
  for (;;) {
    dispatch_due(/*draining=*/false, state);
    const std::uint64_t wake = earliest_wake();
    Request request;
    const PopResult popped = queue_.pop_until(request, *clock_, wake);
    if (popped == PopResult::kItem) {
      {
        std::lock_guard<std::mutex> lock(batch_mutex_);
        batchers_[request.model].add(std::move(request));
      }
      batcher_pending_.fetch_add(1, std::memory_order_relaxed);
      slo_.set_queue_depth(queue_.size());
      integrate_queue();  // opportunistically grab anything else queued
      continue;
    }
    if (popped == PopResult::kTimeout) continue;  // a batcher is due
    // kClosed: queue drained. Serve (or abort) what this worker can see and
    // exit. A racing worker that integrates a last request after our drain
    // performs its own kClosed drain, so nothing is stranded.
    dispatch_due(/*draining=*/true, state);
    return;
  }
}

void ServingEngine::shutdown(bool drain) {
  std::call_once(shutdown_once_, [&] {
    drain_on_shutdown_.store(drain, std::memory_order_release);
    accepting_.store(false, std::memory_order_release);
    queue_.close();
    for (std::thread& t : workers_) t.join();
    // Inline mode (and belt-and-braces after workers exit): integrate any
    // stragglers and drain the batchers so every accepted future resolves.
    std::lock_guard<std::mutex> lock(inline_mutex_);
    integrate_queue();
    dispatch_due(/*draining=*/true, inline_state_);
    slo_.set_queue_depth(0);
  });
}

}  // namespace cdl::serve
