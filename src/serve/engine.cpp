#include "serve/engine.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/energy_meter.h"
#include "obs/trace.h"

namespace cdl::serve {

const char* to_string(PushResult r) {
  switch (r) {
    case PushResult::kOk:
      return "ok";
    case PushResult::kFull:
      return "full";
    case PushResult::kClosed:
      return "closed";
  }
  return "unknown";
}

const char* to_string(PopResult r) {
  switch (r) {
    case PopResult::kItem:
      return "item";
    case PopResult::kTimeout:
      return "timeout";
    case PopResult::kClosed:
      return "closed";
  }
  return "unknown";
}

const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kExpired:
      return "expired";
    case RequestStatus::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

const char* to_string(SubmitStatus s) {
  switch (s) {
    case SubmitStatus::kAccepted:
      return "accepted";
    case SubmitStatus::kQueueFull:
      return "queue_full";
    case SubmitStatus::kUnknownModel:
      return "unknown_model";
    case SubmitStatus::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

namespace {

#ifndef CDL_TRACE_DISABLED
/// Records a span whose endpoints were stamped earlier (the RAII TraceSpan
/// cannot express request phases that start on one thread and end on
/// another). Caller has already checked Tracer::enabled().
void trace_span_between(const char* name, std::uint64_t start_ns,
                        std::uint64_t end_ns, std::int32_t id) {
  obs::TraceEvent event;
  event.name = name;
  event.start_ns = start_ns;
  event.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  event.id = id;
  obs::Tracer::instance().record(event);
}

std::int32_t trace_id(std::uint64_t request_id) {
  return static_cast<std::int32_t>(request_id & 0x7fffffffU);
}
#endif

/// Minimal JSON string escaping for model names in telemetry output.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// A pre-failed receipt for requests that never enter the queue.
Submitted rejected_receipt(SubmitStatus status, std::uint64_t id,
                           std::size_t model) {
  std::promise<Response> promise;
  Submitted out;
  out.status = status;
  out.response = promise.get_future();
  Response resp;
  resp.status = RequestStatus::kRejected;
  resp.request_id = id;
  resp.model = model;
  promise.set_value(std::move(resp));
  return out;
}

}  // namespace

ServingEngine::ServingEngine(ModelRegistry models, EngineConfig config)
    : models_(std::move(models)),
      config_(config),
      clock_(config.clock != nullptr ? config.clock : &RealClock::instance()),
      slo_(config.registry),
      queue_(config.queue_capacity),
      energy_watchdog_(config.energy_budget) {
  if (models_.empty()) {
    throw std::invalid_argument("ServingEngine: model registry is empty");
  }
  batchers_.reserve(models_.size());
  drift_.reserve(models_.size());
  exit_energy_.reserve(models_.size());
  const obs::EnergyMeter meter;  // paper 45nm fp32 + int8 cost tables
  for (std::size_t m = 0; m < models_.size(); ++m) {
    batchers_.emplace_back(config_.batcher, clock_);
    slo_.name_model(m, models_.name(m));
    // Exit stages 0..num_stages()-1 plus the baseline FC exit (num_stages()).
    drift_.push_back(std::make_unique<ExitDriftMonitor>(
        models_.net(m).num_stages() + 1, config_.drift));
    // Energy is a pure function of the exit stage (like exit_ops), so one
    // table lookup per response reproduces offline attribution bit-exactly
    // at any worker count.
    exit_energy_.push_back(models_.net(m).exit_energy_table(meter));
  }
  next_seq_ = std::vector<std::atomic<std::uint64_t>>(models_.size());
  if (!config_.telemetry.path.empty()) {
    std::ostringstream extra;
    extra << ",\"models\":[";
    for (std::size_t m = 0; m < models_.size(); ++m) {
      extra << (m == 0 ? "\"" : ",\"") << json_escape(models_.name(m))
            << "\"";
    }
    extra << "]";
    telemetry_ = std::make_unique<TelemetrySnapshotter>(config_.telemetry,
                                                        clock_, extra.str());
  }
  inline_state_.workspaces.resize(models_.size());
  slo_.set_queue_depth(0);
  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ServingEngine::~ServingEngine() { shutdown(/*drain=*/true); }

Submitted ServingEngine::submit(std::size_t model, Tensor input,
                                std::uint64_t deadline_ns) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (model >= models_.size()) {
    return rejected_receipt(SubmitStatus::kUnknownModel, id, model);
  }
  if (!accepting_.load(std::memory_order_acquire)) {
    return rejected_receipt(SubmitStatus::kShutdown, id, model);
  }
  Request request;
  request.id = id;
  request.model = model;
  // Every request that reaches the push attempt consumes a sequence slot;
  // rejected slots are reported missing below so drift windows stay dense.
  request.seq = next_seq_[model].fetch_add(1, std::memory_order_relaxed);
  request.input = std::move(input);
  request.arrival_ns = clock_->now_ns();
  const std::uint64_t relative =
      deadline_ns != 0 ? deadline_ns : config_.default_deadline_ns;
  request.deadline_ns = relative != 0 ? request.arrival_ns + relative : 0;
#ifndef CDL_TRACE_DISABLED
  if (obs::Tracer::enabled()) {
    request.trace_enqueue_ns = obs::now_ns();
    obs::trace_instant("serve/enqueue", trace_id(id));
  }
#endif

  Submitted out;
  out.response = request.promise.get_future();
  switch (queue_.try_push(std::move(request))) {
    case PushResult::kOk:
      out.status = SubmitStatus::kAccepted;
      slo_.record_accepted(model);
      slo_.set_queue_depth(queue_.size());
      return out;
    case PushResult::kFull: {
      out.status = SubmitStatus::kQueueFull;
      slo_.record_rejected(model);
      drift_[model]->record_missing(request.seq);
      publish_drift(model);
      Response resp;
      resp.status = RequestStatus::kRejected;
      resp.request_id = id;
      resp.model = model;
      request.promise.set_value(std::move(resp));
      return out;
    }
    case PushResult::kClosed: {
      out.status = SubmitStatus::kShutdown;
      drift_[model]->record_missing(request.seq);
      publish_drift(model);
      Response resp;
      resp.status = RequestStatus::kRejected;
      resp.request_id = id;
      resp.model = model;
      request.promise.set_value(std::move(resp));
      return out;
    }
  }
  return out;  // unreachable
}

Submitted ServingEngine::submit(const std::string& model, Tensor input,
                                std::uint64_t deadline_ns) {
  const std::optional<std::size_t> index = models_.find(model);
  if (!index.has_value()) {
    const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
    return rejected_receipt(SubmitStatus::kUnknownModel, id, 0);
  }
  return submit(*index, std::move(input), deadline_ns);
}

void ServingEngine::integrate_request(Request request, std::uint64_t now_ns) {
  // The pass-shared stamp can predate a request that was submitted while the
  // pass was already draining the queue; clamp so queue_ns never underflows
  // (the phase partition tolerates a zero queue phase, not a negative one).
  request.dequeue_ns = std::max(now_ns, request.arrival_ns);
#ifndef CDL_TRACE_DISABLED
  if (obs::Tracer::enabled()) {
    request.trace_dequeue_ns = obs::now_ns();
    if (request.trace_enqueue_ns != 0) {
      trace_span_between("serve/queue_wait", request.trace_enqueue_ns,
                         request.trace_dequeue_ns, trace_id(request.id));
    }
  }
#endif
  {
    std::lock_guard<std::mutex> lock(batch_mutex_);
    batchers_[request.model].add(std::move(request));
  }
  batcher_pending_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t ServingEngine::integrate_queue() {
  std::size_t moved = 0;
  Request request;
  std::uint64_t now_ns = 0;
  while (queue_.try_pop(request) == PopResult::kItem) {
    // One clock read covers every request popped in this pass.
    if (moved == 0) now_ns = clock_->now_ns();
    integrate_request(std::move(request), now_ns);
    ++moved;
  }
  if (moved != 0) slo_.set_queue_depth(queue_.size());
  return moved;
}

std::uint64_t ServingEngine::earliest_wake() {
  std::lock_guard<std::mutex> lock(batch_mutex_);
  std::uint64_t wake = Clock::kNever;
  for (const DynamicBatcher& batcher : batchers_) {
    if (batcher.ready()) return 0;  // work due now — do not sleep
    wake = std::min(wake, batcher.next_wake_ns());
  }
  return wake;
}

std::size_t ServingEngine::dispatch_due(bool draining, WorkerState& state) {
  // Phase 1: under the batcher lock, decide what to run — but run nothing.
  std::vector<std::pair<std::size_t, std::vector<Request>>> expired;
  std::vector<std::pair<std::size_t, std::vector<Request>>> batches;
  {
    std::lock_guard<std::mutex> lock(batch_mutex_);
    for (std::size_t m = 0; m < batchers_.size(); ++m) {
      DynamicBatcher& batcher = batchers_[m];
      std::vector<Request> dead = batcher.take_expired();
      if (!dead.empty()) {
        batcher_pending_.fetch_sub(dead.size(), std::memory_order_relaxed);
        expired.emplace_back(m, std::move(dead));
      }
      while (batcher.ready()) {
        std::vector<Request> batch = batcher.take();
        batcher_pending_.fetch_sub(batch.size(), std::memory_order_relaxed);
        batches.emplace_back(m, std::move(batch));
      }
      if (draining) {
        std::vector<Request> rest = batcher.drain();
        if (!rest.empty()) {
          batcher_pending_.fetch_sub(rest.size(), std::memory_order_relaxed);
          batches.emplace_back(m, std::move(rest));
        }
      }
    }
  }

  // Phase 2: execute outside the lock so models run concurrently.
  std::size_t terminal = 0;
  for (auto& [model, dead] : expired) {
    for (Request& request : dead) {
      fail_request(std::move(request), RequestStatus::kExpired);
      ++terminal;
    }
  }
  const bool abort =
      draining && !drain_on_shutdown_.load(std::memory_order_acquire);
  for (auto& [model, batch] : batches) {
    terminal += batch.size();
    if (abort) {
      for (Request& request : batch) {
        fail_request(std::move(request), RequestStatus::kShutdown);
      }
    } else {
      execute_batch(model, std::move(batch), state);
    }
  }
  return terminal;
}

void ServingEngine::execute_batch(std::size_t model,
                                  std::vector<Request> batch,
                                  WorkerState& state) {
  if (batch.empty()) return;
  const std::uint64_t formed_ns = clock_->now_ns();
#ifndef CDL_TRACE_DISABLED
  const bool tracing = obs::Tracer::enabled();
  const std::uint64_t trace_formed_ns = tracing ? obs::now_ns() : 0;
  if (tracing) {
    obs::trace_instant("serve/batch_form",
                       static_cast<std::int32_t>(batch.size()));
  }
#endif
  state.inputs.clear();
  for (Request& request : batch) {
    request.batch_ns = formed_ns;
#ifndef CDL_TRACE_DISABLED
    if (tracing) {
      request.trace_batch_ns = trace_formed_ns;
      if (request.trace_dequeue_ns != 0) {
        trace_span_between("serve/batch_wait", request.trace_dequeue_ns,
                           trace_formed_ns, trace_id(request.id));
      }
    }
#endif
    state.inputs.push_back(std::move(request.input));
  }
  models_.net(model).classify_batch_into(state.inputs, state.results,
                                         state.workspaces[model],
                                         config_.pool);
  const std::uint64_t done_ns = clock_->now_ns();
#ifndef CDL_TRACE_DISABLED
  const std::uint64_t trace_done_ns = tracing ? obs::now_ns() : 0;
#endif
  slo_.record_batch(model, batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Request& request = batch[i];
    const ClassificationResult& result = state.results[i];
    Response resp;
    resp.status = RequestStatus::kOk;
    resp.result = result;
    resp.request_id = request.id;
    resp.model = model;
    resp.latency_ns = done_ns - request.arrival_ns;
    resp.batch_size = batch.size();
    // The three phases share the latency's own stamps, so they partition it
    // exactly: queue + batch_wait + compute == latency.
    resp.queue_ns = request.dequeue_ns - request.arrival_ns;
    resp.batch_wait_ns = request.batch_ns - request.dequeue_ns;
    resp.compute_ns = done_ns - request.batch_ns;
    // Matches DynamicBatcher::take_expired: a request is dead AT its
    // deadline instant, so completion then is already a miss.
    resp.slo_miss = request.deadline_ns != 0 && done_ns >= request.deadline_ns;
    resp.energy_pj = exit_energy_[model][result.exit_stage];
    slo_.record_completed(model, resp.latency_ns, resp.queue_ns,
                          resp.batch_wait_ns, resp.compute_ns, resp.slo_miss,
                          resp.energy_pj);
    slo_.record_exit(model, result.exit_stage);
    drift_[model]->record(request.seq, result.exit_stage,
                          static_cast<double>(result.confidence));
    energy_watchdog_.record(done_ns, resp.energy_pj);
#ifndef CDL_TRACE_DISABLED
    if (tracing) {
      trace_span_between("serve/execute", trace_formed_ns, trace_done_ns,
                         trace_id(request.id));
    }
#endif
    request.promise.set_value(std::move(resp));
    CDL_TRACE_INSTANT("serve/respond", trace_id(request.id));
  }
  publish_drift(model);
  publish_energy();
}

void ServingEngine::fail_request(Request request, RequestStatus status) {
  const std::uint64_t now_ns = clock_->now_ns();
  Response resp;
  resp.status = status;
  resp.request_id = request.id;
  resp.model = request.model;
  resp.latency_ns = now_ns > request.arrival_ns ? now_ns - request.arrival_ns
                                                : 0;
  resp.slo_miss = status == RequestStatus::kExpired;
  if (status == RequestStatus::kExpired) {
    slo_.record_expired(request.model, resp.latency_ns);
  } else if (status == RequestStatus::kShutdown) {
    slo_.record_shutdown(request.model);
  }
  // The sequence slot will never carry an exit stage; keep windows dense.
  drift_[request.model]->record_missing(request.seq);
  publish_drift(request.model);
  request.promise.set_value(std::move(resp));
  CDL_TRACE_INSTANT("serve/respond", trace_id(request.id));
}

void ServingEngine::publish_drift(std::size_t model) {
  for (const DriftWindowResult& window : drift_[model]->take_scored()) {
    slo_.record_drift(model, window.index, window.score, window.drift);
    if (window.drift) {
      CDL_TRACE_INSTANT("serve/drift",
                        static_cast<std::int32_t>(window.index));
    }
  }
}

void ServingEngine::publish_energy() {
  for (const EnergyWindowResult& window : energy_watchdog_.take_scored()) {
    slo_.record_energy_window(window.index, window.rate_mj_per_s,
                              window.breach);
    if (window.breach) {
      CDL_TRACE_INSTANT("serve/energy_budget",
                        static_cast<std::int32_t>(window.index));
    }
  }
}

std::size_t ServingEngine::run_once() {
  std::lock_guard<std::mutex> lock(inline_mutex_);
  integrate_queue();
  const std::size_t terminal = dispatch_due(/*draining=*/false, inline_state_);
  pump_telemetry();
  return terminal;
}

std::size_t ServingEngine::in_flight() const {
  return queue_.size() + batcher_pending_.load(std::memory_order_relaxed);
}

void ServingEngine::worker_loop(std::size_t worker) {
  (void)worker;
  WorkerState state;
  state.workspaces.resize(models_.size());
  for (;;) {
    dispatch_due(/*draining=*/false, state);
    pump_telemetry();
    std::uint64_t wake = earliest_wake();
    if (telemetry_ != nullptr) {
      // Do not sleep past the next telemetry sample.
      wake = std::min(wake, telemetry_->next_due_ns());
    }
    Request request;
    const PopResult popped = queue_.pop_until(request, *clock_, wake);
    if (popped == PopResult::kItem) {
      integrate_request(std::move(request), clock_->now_ns());
      slo_.set_queue_depth(queue_.size());
      integrate_queue();  // opportunistically grab anything else queued
      continue;
    }
    if (popped == PopResult::kTimeout) continue;  // a batcher/sample is due
    // kClosed: queue drained. Serve (or abort) what this worker can see and
    // exit. A racing worker that integrates a last request after our drain
    // performs its own kClosed drain, so nothing is stranded.
    dispatch_due(/*draining=*/true, state);
    return;
  }
}

void ServingEngine::shutdown(bool drain) {
  std::call_once(shutdown_once_, [&] {
    drain_on_shutdown_.store(drain, std::memory_order_release);
    accepting_.store(false, std::memory_order_release);
    queue_.close();
    for (std::thread& t : workers_) t.join();
    // Inline mode (and belt-and-braces after workers exit): integrate any
    // stragglers and drain the batchers so every accepted future resolves.
    std::lock_guard<std::mutex> lock(inline_mutex_);
    integrate_queue();
    dispatch_due(/*draining=*/true, inline_state_);
    slo_.set_queue_depth(0);
    // Score the partial energy window so the final accounting is complete.
    energy_watchdog_.flush(clock_->now_ns());
    publish_energy();
    // Final state of the run, regardless of where the interval stood.
    pump_telemetry(/*force=*/true);
  });
}

void ServingEngine::pump_telemetry(bool force) {
  if (telemetry_ == nullptr) return;
  if (!force && !telemetry_->due()) return;
  telemetry_->sample([this](std::ostream& os) { write_telemetry_body(os); },
                     force);
}

void ServingEngine::write_telemetry_body(std::ostream& os) {
  os << std::setprecision(17);
  os << ",\"queue_depth\":" << queue_.size() << ",\"in_flight\":"
     << in_flight() << ",\"models\":[";
  const std::vector<SloSummary> summaries = slo_.summaries();
  for (std::size_t m = 0; m < summaries.size(); ++m) {
    const SloSummary& s = summaries[m];
    if (m != 0) os << ",";
    os << "{\"model\":\"" << json_escape(s.model) << "\""
       << ",\"submitted\":" << s.submitted << ",\"accepted\":" << s.accepted
       << ",\"completed\":" << s.completed << ",\"rejected\":" << s.rejected
       << ",\"expired\":" << s.expired << ",\"slo_miss\":" << s.slo_miss
       << ",\"batches\":" << s.batches << ",\"mean_batch\":" << s.mean_batch
       << ",\"latency_ms\":{\"p50\":" << s.p50_ms << ",\"p95\":" << s.p95_ms
       << ",\"p99\":" << s.p99_ms << ",\"mean\":" << s.mean_ms << "}"
       << ",\"phase_ms\":{\"queue_mean\":" << s.queue_mean_ms
       << ",\"batch_mean\":" << s.batch_mean_ms
       << ",\"compute_mean\":" << s.compute_mean_ms << "}"
       << ",\"exits\":[";
    for (std::size_t e = 0; e < s.exits.size(); ++e) {
      os << (e == 0 ? "" : ",") << s.exits[e];
    }
    os << "],\"drift\":{\"windows\":" << s.drift_windows
       << ",\"events\":" << s.drift_events << ",\"score\":" << s.drift_score
       << ",\"max_score\":" << s.drift_max_score
       << ",\"first_drift_window\":" << s.first_drift_window << "}"
       << ",\"energy_pj\":{\"p50\":" << s.energy_p50_pj
       << ",\"p95\":" << s.energy_p95_pj << ",\"p99\":" << s.energy_p99_pj
       << ",\"mean\":" << s.energy_mean_pj << ",\"max\":" << s.energy_max_pj
       << ",\"total\":" << s.energy_total_pj << "}}";
  }
  os << "],\"energy_budget\":{\"enabled\":"
     << (energy_watchdog_.enabled() ? "true" : "false")
     << ",\"budget_mj_per_s\":" << energy_watchdog_.config().budget_mj_per_s
     << ",\"windows\":" << energy_watchdog_.windows_scored()
     << ",\"breaches\":" << energy_watchdog_.breaches()
     << ",\"rate_mj_per_s\":" << energy_watchdog_.latest_rate_mj_per_s()
     << ",\"max_rate_mj_per_s\":" << energy_watchdog_.max_rate_mj_per_s()
     << ",\"first_breach_window\":" << energy_watchdog_.first_breach_window()
     << ",\"total_energy_pj\":" << energy_watchdog_.total_energy_pj() << "}";
}

}  // namespace cdl::serve
