// ServingEngine: turns per-request arrivals into batched cascade work.
//
//   submit() --> bounded MpmcQueue --> per-model DynamicBatcher --> worker
//   threads running ConditionalNetwork::classify_batch_into over warm
//   BatchWorkspaces --> per-request futures + SLO accounting.
//
// Contracts:
//   * Determinism — a served request's ClassificationResult is bit-identical
//     to an offline classify()/classify_batch_into of the same image on the
//     same network, for any arrival order, batch composition, worker count
//     or tile split (inherited from the stage-major batch path's own
//     contract and asserted by test_serving_engine).
//   * Backpressure — a full queue rejects at submit() (status kQueueFull,
//     response kRejected); nothing blocks the caller.
//   * Drain-on-shutdown — shutdown() serves every accepted request before
//     returning; shutdown(/*drain=*/false) fails pending requests with
//     kShutdown instead (abort path). Either way every future is fulfilled.
//   * Deadlines — a request whose deadline passes before dispatch is failed
//     with kExpired (no inference runs); one served after its deadline
//     completes with slo_miss set. Both count toward cdl_serve_slo_miss.
//
// Time comes exclusively from the injected Clock, so the whole engine runs
// under a ManualClock in tests: with workers == 0 nothing blocks and
// run_once() pumps the pipeline deterministically on the caller's thread;
// with real workers the queue's timed waits park on the clock itself and
// wake on virtual-time advances.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cdl/conditional_network.h"
#include "core/thread_pool.h"
#include "obs/registry.h"
#include "serve/batcher.h"
#include "serve/clock.h"
#include "serve/drift.h"
#include "serve/energy_budget.h"
#include "serve/model_registry.h"
#include "serve/request.h"
#include "serve/request_queue.h"
#include "serve/slo.h"
#include "serve/telemetry.h"

namespace cdl::serve {

struct EngineConfig {
  std::size_t queue_capacity = 1024;
  /// Dispatcher/executor threads. 0 = inline mode: nothing runs until the
  /// caller pumps run_once() (the deterministic simulation harness).
  std::size_t workers = 1;
  BatcherConfig batcher;
  /// Deadline applied to submits that pass deadline_ns == 0; 0 = none.
  std::uint64_t default_deadline_ns = 0;
  /// Time source; null = RealClock::instance(). Must outlive the engine.
  Clock* clock = nullptr;
  /// Mirrors SLO counters into OpenMetrics families when set (must outlive
  /// the engine). Null = in-memory accounting only.
  obs::Registry* registry = nullptr;
  /// Intra-batch parallelism for classify_batch_into; null = serial per
  /// worker (worker-level parallelism across batches instead).
  ThreadPool* pool = nullptr;
  /// Exit-profile drift monitoring (one ExitDriftMonitor per model, windowed
  /// on the submission sequence — see serve/drift.h for the determinism
  /// contract). Always on; costs one uncontended mutex hop per request.
  DriftConfig drift;
  /// Live telemetry (JSONL snapshots of queue depth, per-model SLO numbers,
  /// exit profile, drift scores and energy accounting). Disabled while
  /// telemetry.path is empty.
  TelemetryConfig telemetry;
  /// Energy-budget watchdog over attributed request energy (see
  /// serve/energy_budget.h). Disabled while budget_mj_per_s == 0; the engine
  /// always attributes per-request energy either way.
  EnergyBudgetConfig energy_budget;
};

enum class SubmitStatus : std::uint8_t {
  kAccepted = 0,
  kQueueFull = 1,     ///< backpressure: bounded queue rejected the request
  kUnknownModel = 2,
  kShutdown = 3,      ///< engine no longer accepting
};

[[nodiscard]] const char* to_string(SubmitStatus s);

/// submit()'s receipt: the future is valid on every path — immediately
/// fulfilled with a kRejected response when status != kAccepted.
struct Submitted {
  SubmitStatus status = SubmitStatus::kAccepted;
  std::future<Response> response;
};

class ServingEngine {
 public:
  /// Takes ownership of the registry's networks. Worker threads start
  /// immediately (none in inline mode). Throws std::invalid_argument on an
  /// empty model registry.
  ServingEngine(ModelRegistry models, EngineConfig config);
  ~ServingEngine();  ///< shutdown(/*drain=*/true) if still running

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Enqueues one image for `model`. `deadline_ns` is relative to the
  /// submission time (0 = EngineConfig::default_deadline_ns; that being 0
  /// too = no deadline). Never blocks.
  [[nodiscard]] Submitted submit(std::size_t model, Tensor input,
                                 std::uint64_t deadline_ns = 0);
  [[nodiscard]] Submitted submit(const std::string& model, Tensor input,
                                 std::uint64_t deadline_ns = 0);

  /// Inline pump (workers == 0, or tests that want explicit control):
  /// integrates every queued request into the batchers, expires dead
  /// requests, dispatches every due batch, and returns the number of
  /// requests that reached a terminal state. Never blocks.
  std::size_t run_once();

  /// Stops accepting, then serves (drain = true) or fails with kShutdown
  /// (drain = false) everything accepted, joins the workers, and fulfills
  /// every outstanding future. Idempotent.
  void shutdown(bool drain = true);

  [[nodiscard]] const ModelRegistry& models() const { return models_; }
  [[nodiscard]] const EngineConfig& config() const { return config_; }
  [[nodiscard]] const Clock& clock() const { return *clock_; }
  [[nodiscard]] SloTracker& slo() { return slo_; }
  /// The per-model drift monitor, e.g. to install a reference exit profile
  /// (checkpoint .meta) before traffic arrives. Valid for the engine's life.
  [[nodiscard]] ExitDriftMonitor& drift_monitor(std::size_t model) {
    return *drift_[model];
  }
  /// Null unless EngineConfig::telemetry.path was set.
  [[nodiscard]] TelemetrySnapshotter* telemetry() { return telemetry_.get(); }
  /// The energy-budget watchdog (enabled() false when no budget was set;
  /// totals still accumulate). Valid for the engine's life.
  [[nodiscard]] EnergyBudgetWatchdog& energy_watchdog() {
    return energy_watchdog_;
  }
  /// The precomputed cumulative exit-energy table (pJ, index = exit stage)
  /// responses for `model` are stamped from.
  [[nodiscard]] const std::vector<double>& exit_energy_table(
      std::size_t model) const {
    return exit_energy_[model];
  }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  /// Requests accepted but not yet terminal (queued or pending in a
  /// batcher). Engine-wide, approximate while workers are mid-dispatch.
  [[nodiscard]] std::size_t in_flight() const;

 private:
  /// Per-worker reusable execution state: warm workspaces (one per model)
  /// and warm input/result vectors, so steady-state inference stays on the
  /// zero-allocation classify_batch_into path.
  struct WorkerState {
    std::vector<BatchWorkspace> workspaces;  ///< indexed by model
    std::vector<Tensor> inputs;
    std::vector<ClassificationResult> results;
  };

  void worker_loop(std::size_t worker);
  /// Stamps dequeue time (+ queue-wait trace span) and hands the request to
  /// its model's batcher. `now_ns` is the shared engine-clock stamp for this
  /// integration pass (one clock read covers every request popped in it).
  void integrate_request(Request request, std::uint64_t now_ns);
  /// Moves queued requests into their batchers without blocking. Returns
  /// the number integrated.
  std::size_t integrate_queue();
  /// Expires and dispatches due (or, when draining, all pending) batches.
  /// Returns the number of requests that reached a terminal state.
  std::size_t dispatch_due(bool draining, WorkerState& state);
  /// Earliest clock time a batcher needs service; 0 when one is ready now.
  [[nodiscard]] std::uint64_t earliest_wake();
  void execute_batch(std::size_t model, std::vector<Request> batch,
                     WorkerState& state);
  void fail_request(Request request, RequestStatus status);
  /// Drains the model's freshly scored drift windows into the SLO tracker
  /// (drift gauge/event counter) and the trace stream.
  void publish_drift(std::size_t model);
  /// Drains the watchdog's freshly closed energy windows into the SLO
  /// tracker (rate gauge / breach counter) and the trace stream.
  void publish_energy();
  /// Writes a telemetry sample when one is due (or `force`). No-op while
  /// telemetry is disabled; costs one clock read + atomic load otherwise.
  void pump_telemetry(bool force = false);
  void write_telemetry_body(std::ostream& os);

  ModelRegistry models_;
  EngineConfig config_;
  Clock* clock_;
  SloTracker slo_;
  MpmcQueue<Request> queue_;
  /// One drift monitor per model (unique_ptr: the monitor owns a mutex).
  std::vector<std::unique_ptr<ExitDriftMonitor>> drift_;
  EnergyBudgetWatchdog energy_watchdog_;
  /// Per-model cumulative exit-energy tables (pJ, index = exit stage),
  /// precomputed at construction so stamping a response is one lookup.
  std::vector<std::vector<double>> exit_energy_;
  std::unique_ptr<TelemetrySnapshotter> telemetry_;
  std::atomic<std::uint64_t> next_id_{1};
  /// Dense per-model submission sequences backing Request::seq.
  std::vector<std::atomic<std::uint64_t>> next_seq_;
  std::atomic<bool> accepting_{true};
  std::atomic<bool> drain_on_shutdown_{true};
  std::atomic<std::uint64_t> batcher_pending_{0};

  std::mutex batch_mutex_;  ///< guards batchers_ (state machines)
  std::vector<DynamicBatcher> batchers_;  ///< one per model

  std::once_flag shutdown_once_;
  std::vector<std::thread> workers_;
  WorkerState inline_state_;  ///< run_once()'s execution state
  std::mutex inline_mutex_;   ///< serializes run_once callers
};

}  // namespace cdl::serve
