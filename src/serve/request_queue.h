// MpmcQueue: the bounded multi-producer/multi-consumer request queue at the
// front of the serving engine.
//
// A fixed-capacity ring buffer guarded by one mutex and two condition
// variables. The interface is deliberately index-and-slot shaped (power-of-
// two-free, no iterator exposure, no reallocation after construction) so a
// lock-free ring can replace the implementation without touching callers.
//
// Backpressure contract: try_push never blocks — a full queue returns kFull
// and the caller rejects the request upstream. close() flips the queue into
// drain mode: further pushes return kClosed, while pops keep returning the
// items already queued and only report kClosed once empty. Every item pushed
// successfully is popped exactly once (the MPMC invariant the stress test
// asserts).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "serve/clock.h"

namespace cdl::serve {

enum class PushResult { kOk, kFull, kClosed };
enum class PopResult { kItem, kTimeout, kClosed };

[[nodiscard]] const char* to_string(PushResult r);
[[nodiscard]] const char* to_string(PopResult r);

template <typename T>
class MpmcQueue {
 public:
  /// Throws std::invalid_argument on zero capacity (a queue that can hold
  /// nothing would make every push a rejection).
  explicit MpmcQueue(std::size_t capacity)
      : slots_(capacity == 0 ? throw std::invalid_argument(
                                   "MpmcQueue: capacity must be > 0")
                             : capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Non-blocking enqueue; kFull is the backpressure signal.
  [[nodiscard]] PushResult try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (count_ == slots_.size()) return PushResult::kFull;
      slots_[(head_ + count_) % slots_.size()] = std::move(item);
      ++count_;
    }
    not_empty_.notify_one();
    return PushResult::kOk;
  }

  /// Blocking enqueue: waits (on `clock`) until space, close, or
  /// deadline_ns. Used by closed-loop producers; the engine's submit path
  /// uses try_push.
  [[nodiscard]] PushResult push_until(T&& item, Clock& clock,
                                      std::uint64_t deadline_ns) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      clock.wait_until(not_full_, lock, deadline_ns, [&] {
        return closed_ || count_ < slots_.size();
      });
      if (closed_) return PushResult::kClosed;
      if (count_ == slots_.size()) return PushResult::kFull;  // timed out
      slots_[(head_ + count_) % slots_.size()] = std::move(item);
      ++count_;
    }
    not_empty_.notify_one();
    return PushResult::kOk;
  }

  /// Non-blocking dequeue.
  [[nodiscard]] PopResult try_pop(T& out) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (count_ == 0) return closed_ ? PopResult::kClosed : PopResult::kTimeout;
      out = std::move(slots_[head_]);
      head_ = (head_ + 1) % slots_.size();
      --count_;
    }
    not_full_.notify_one();
    return PopResult::kItem;
  }

  /// Dequeue, waiting (on `clock`) until an item arrives, the queue is
  /// closed and drained, or the clock reaches deadline_ns (Clock::kNever =
  /// wait indefinitely). kTimeout means "nothing yet", not "empty forever".
  [[nodiscard]] PopResult pop_until(T& out, Clock& clock,
                                    std::uint64_t deadline_ns) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      clock.wait_until(not_empty_, lock, deadline_ns,
                       [&] { return closed_ || count_ > 0; });
      if (count_ == 0) return closed_ ? PopResult::kClosed : PopResult::kTimeout;
      out = std::move(slots_[head_]);
      head_ = (head_ + 1) % slots_.size();
      --count_;
    }
    not_full_.notify_one();
    return PopResult::kItem;
  }

  /// Blocking dequeue with no deadline: kItem or (closed and drained)
  /// kClosed.
  [[nodiscard]] PopResult pop(T& out, Clock& clock) {
    return pop_until(out, clock, Clock::kNever);
  }

  /// Stops accepting pushes and wakes every waiter; queued items remain
  /// poppable (drain-on-shutdown).
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
  }

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<T> slots_;
  std::size_t head_ = 0;   ///< index of the oldest item
  std::size_t count_ = 0;  ///< items currently queued
  bool closed_ = false;
};

}  // namespace cdl::serve
