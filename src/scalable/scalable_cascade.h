// ScalableCascade: the paper's cited predecessor as a comparison baseline.
//
// Venkataramani et al., "Scalable-effort classifiers for energy-efficient
// machine learning" (DAC 2015) — the paper's reference [1] — chains
// *independent* classifiers of increasing complexity, each consuming the raw
// input and passing low-confidence instances to the next, more accurate
// model. CDL's improvement over this scheme is feature sharing: its stages
// tap the baseline's convolutional features instead of re-processing the
// input from scratch. Implementing the predecessor makes that delta
// measurable (bench/baseline_scalable_effort).
#pragma once

#include <vector>

#include "cdl/activation_module.h"
#include "cdl/conditional_network.h"  // reuses ClassificationResult
#include "core/rng.h"
#include "data/dataset.h"
#include "nn/network.h"

namespace cdl {

class ScalableCascade {
 public:
  /// `input_shape` is shared by every stage; each stage must map it to a
  /// rank-1 score vector over the same classes.
  explicit ScalableCascade(Shape input_shape);

  ScalableCascade(ScalableCascade&&) = default;
  ScalableCascade& operator=(ScalableCascade&&) = default;

  /// Appends a stage model (typically ordered cheapest to most accurate).
  /// Returns the stage index. Throws if the stage's output shape disagrees
  /// with previously added stages.
  std::size_t add_stage(Network stage);

  [[nodiscard]] std::size_t num_stages() const { return stages_.size(); }
  [[nodiscard]] Network& stage(std::size_t i);
  [[nodiscard]] const Shape& input_shape() const { return input_shape_; }

  [[nodiscard]] ActivationModule& activation_module() { return activation_; }
  void set_delta(float delta) { activation_.set_delta(delta); }

  /// Cascaded inference: stages run in order; the first stage whose softmax
  /// confidence clears the activation rule terminates. The final stage
  /// always terminates. exit_stage indexes the deciding stage.
  [[nodiscard]] ClassificationResult classify(const Tensor& input);

  /// Cost of running stages 0..stage inclusive (every earlier stage's full
  /// forward pass is paid — nothing is shared).
  [[nodiscard]] OpCount exit_ops(std::size_t stage) const;
  [[nodiscard]] OpCount worst_case_ops() const;

 private:
  Shape input_shape_;
  std::size_t num_classes_ = 0;
  std::vector<Network> stages_;
  ActivationModule activation_;
};

struct ScalableTrainConfig {
  /// Epoch counts per stage, cheap stages first; padded with the last value
  /// if fewer entries than stages.
  std::vector<std::size_t> epochs_per_stage = {8};
  float learning_rate = 0.1F;
  float momentum = 0.5F;
  float lr_decay = 0.9F;
  /// Confidence level used to route training instances between stages.
  float train_delta = 0.6F;
};

struct ScalableTrainReport {
  std::vector<std::size_t> reached;      ///< instances reaching each stage
  std::vector<std::size_t> classified;   ///< instances terminating there
};

/// Trains each stage on the instances the previous stages passed on (the
/// same instance-routing discipline as Algorithm 1).
ScalableTrainReport train_scalable_cascade(ScalableCascade& cascade,
                                           const Dataset& train,
                                           const ScalableTrainConfig& config,
                                           Rng& rng);

}  // namespace cdl
