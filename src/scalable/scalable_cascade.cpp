#include "scalable/scalable_cascade.h"

#include <numeric>
#include <stdexcept>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/softmax.h"

namespace cdl {

ScalableCascade::ScalableCascade(Shape input_shape)
    : input_shape_(std::move(input_shape)) {}

std::size_t ScalableCascade::add_stage(Network stage) {
  const Shape out = stage.output_shape(input_shape_);  // validates
  if (out.rank() != 1) {
    throw std::invalid_argument(
        "ScalableCascade: stage must emit a rank-1 score vector, got " +
        out.to_string());
  }
  if (num_classes_ == 0) {
    num_classes_ = out.numel();
  } else if (out.numel() != num_classes_) {
    throw std::invalid_argument("ScalableCascade: stage has " +
                                std::to_string(out.numel()) +
                                " classes, cascade has " +
                                std::to_string(num_classes_));
  }
  stages_.push_back(std::move(stage));
  return stages_.size() - 1;
}

Network& ScalableCascade::stage(std::size_t i) {
  if (i >= stages_.size()) {
    throw std::out_of_range("ScalableCascade: stage " + std::to_string(i));
  }
  return stages_[i];
}

ClassificationResult ScalableCascade::classify(const Tensor& input) {
  if (stages_.empty()) {
    throw std::logic_error("ScalableCascade: no stages");
  }
  if (input.shape() != input_shape_) {
    throw std::invalid_argument("ScalableCascade: input shape " +
                                input.shape().to_string());
  }
  ClassificationResult result;
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const Tensor logits = stages_[s].forward(input);
    const Tensor probs = softmax(logits);
    result.ops += stages_[s].forward_ops(input_shape_);
    result.ops += softmax_ops(num_classes_);
    result.ops += activation_.decision_ops(num_classes_);

    const ActivationDecision decision = activation_.evaluate(probs);
    const bool last = (s + 1 == stages_.size());
    if (decision.terminate || last) {
      result.label = decision.label;
      result.exit_stage = s;
      result.confidence = decision.confidence;
      result.probabilities = probs;
      return result;
    }
  }
  throw std::logic_error("ScalableCascade: unreachable");
}

OpCount ScalableCascade::exit_ops(std::size_t stage) const {
  if (stage >= stages_.size()) {
    throw std::out_of_range("ScalableCascade::exit_ops: stage " +
                            std::to_string(stage));
  }
  OpCount ops;
  for (std::size_t s = 0; s <= stage; ++s) {
    ops += stages_[s].forward_ops(input_shape_);
    ops += softmax_ops(num_classes_);
    ops += activation_.decision_ops(num_classes_);
  }
  return ops;
}

OpCount ScalableCascade::worst_case_ops() const {
  return exit_ops(stages_.size() - 1);
}

ScalableTrainReport train_scalable_cascade(ScalableCascade& cascade,
                                           const Dataset& train,
                                           const ScalableTrainConfig& config,
                                           Rng& rng) {
  if (cascade.num_stages() == 0) {
    throw std::invalid_argument("train_scalable_cascade: no stages");
  }
  if (train.empty()) {
    throw std::invalid_argument("train_scalable_cascade: empty dataset");
  }
  if (config.epochs_per_stage.empty()) {
    throw std::invalid_argument("train_scalable_cascade: no epoch schedule");
  }

  ScalableTrainReport report;
  const ActivationModule gate(config.train_delta,
                              cascade.activation_module().policy());
  SoftmaxCrossEntropyLoss loss_fn;

  // Instances still flowing; stage k trains on what earlier stages passed.
  std::vector<std::size_t> flowing(train.size());
  std::iota(flowing.begin(), flowing.end(), std::size_t{0});

  for (std::size_t s = 0; s < cascade.num_stages(); ++s) {
    report.reached.push_back(flowing.size());
    Network& net = cascade.stage(s);
    const std::size_t epochs =
        s < config.epochs_per_stage.size() ? config.epochs_per_stage[s]
                                           : config.epochs_per_stage.back();

    SgdOptimizer opt({.learning_rate = config.learning_rate,
                      .momentum = config.momentum,
                      .lr_decay = config.lr_decay});
    std::vector<std::size_t> order = flowing;
    for (std::size_t epoch = 0; epoch < epochs && !order.empty(); ++epoch) {
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.index(i)]);
      }
      for (std::size_t idx : order) {
        const Tensor logits = net.forward(train.image(idx));
        net.backward(loss_fn.grad(logits, train.label(idx)));
        opt.step(net);
      }
      opt.end_epoch();
    }

    // Route: keep only the instances this stage is not confident about.
    std::size_t classified = 0;
    std::vector<std::size_t> next;
    next.reserve(flowing.size());
    for (std::size_t idx : flowing) {
      const Tensor probs = softmax(net.forward(train.image(idx)));
      if (gate.evaluate(probs).terminate) {
        ++classified;
      } else {
        next.push_back(idx);
      }
    }
    report.classified.push_back(classified);
    flowing = std::move(next);
  }
  return report;
}

}  // namespace cdl
